"""pepc-style power control plane: query/set power properties by scope.

Modeled on Intel's ``pepc`` (Power, Energy, and Performance
Configuration) idiom: every operation takes a *scope* that names which
silicon it touches, and info/set are symmetric over the same property
set.  The scope ladder here is the virtualized-card analog of pepc's
global/package/core model:

* ``global``  — every card on every host,
* ``card``    — one card index (optionally on one host),
* ``core``    — specific cores of one card,
* ``vm``      — the card a VM's vPHI dispatch targets (resolved
  through the VM registry the caller supplies).

Properties: P-state (requested operating point), C-state enablement,
the RAPL-style TDP cap, and the uncore frequency multiplier.  All of it
requires the owning machines to have opted into the power model
(``power_model="knc"``) — addressing an unpowered card is a typed
error, not a silent no-op.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim import SimError

__all__ = ["PowerControl", "Scope"]


@dataclass(frozen=True)
class Scope:
    """What a pepc operation addresses.

    Build with the classmethods; ``host=None`` means "that card index
    on every host".
    """

    level: str
    host: Optional[int] = None
    card: Optional[int] = None
    cores: Optional[tuple[int, ...]] = None
    vm: Optional[str] = None

    LEVELS = ("global", "card", "core", "vm")

    @classmethod
    def everything(cls) -> "Scope":
        return cls("global")

    @classmethod
    def one_card(cls, card: int, host: Optional[int] = None) -> "Scope":
        return cls("card", host=host, card=card)

    @classmethod
    def one_core(cls, cores, card: int, host: Optional[int] = None) -> "Scope":
        return cls("core", host=host, card=card, cores=tuple(cores))

    @classmethod
    def one_vm(cls, name: str) -> "Scope":
        return cls("vm", vm=name)

    def __str__(self) -> str:
        if self.level == "global":
            return "global"
        if self.level == "vm":
            return f"vm:{self.vm}"
        where = f"c{self.card}" if self.host is None else f"h{self.host}c{self.card}"
        if self.level == "core":
            return f"{where}:cores{list(self.cores)}"
        return where


class PowerControl:
    """Property control plane over one or more machines' cards."""

    def __init__(self, machines, vms: Optional[dict] = None):
        if not machines:
            raise SimError("pepc needs at least one machine")
        self.machines = list(machines)
        #: VM name -> VirtualMachine, for resolving ``vm`` scopes.
        self.vms = dict(vms) if vms else {}

    # -- scope resolution ----------------------------------------------
    def _resolve(self, scope: Optional[Scope]) -> list[tuple]:
        """``[(host_idx, device, cores_or_None), ...]`` for a scope."""
        scope = scope or Scope.everything()
        if scope.level not in Scope.LEVELS:
            raise SimError(f"unknown pepc scope level {scope.level!r}")
        if scope.level == "vm":
            return [self._resolve_vm(scope.vm)]
        targets = []
        for h, machine in enumerate(self.machines):
            if scope.host is not None and h != scope.host:
                continue
            for c, device in enumerate(machine.devices):
                if scope.card is not None and c != scope.card:
                    continue
                targets.append((h, device, scope.cores))
        if not targets:
            raise SimError(f"pepc scope {scope} matches no cards")
        return targets

    def _resolve_vm(self, name: str) -> tuple:
        vm = self.vms.get(name)
        if vm is None:
            raise SimError(f"pepc: unknown VM {name!r} (not in the registry)")
        inst = getattr(vm, "vphi", None)
        if inst is None:
            raise SimError(f"pepc: VM {name!r} has no vPHI instance")
        for h, machine in enumerate(self.machines):
            if machine.kernel is vm.host_kernel:
                return (h, machine.devices[inst.card], None)
        raise SimError(f"pepc: VM {name!r} runs on none of these machines")

    def _power(self, host: int, device):
        if device.power is None:
            raise SimError(
                f"h{host}/{device.name}: power_model='none' — construct the "
                "Machine/Cluster with power_model='knc' to use pepc")
        return device.power

    # -- properties ----------------------------------------------------
    def info(self, scope: Optional[Scope] = None) -> list[dict]:
        """One row per addressed card (live values; advances the model)."""
        rows = []
        for host, device, cores in self._resolve(scope):
            power = self._power(host, device)
            power.refresh()
            core_list = (range(device.sku.cores) if cores is None else cores)
            rows.append({
                "host": host,
                "card": device.name,
                "sku": device.sku.name,
                "state": device.state.value,
                "pstates": len(power.pstates),
                "requested_pstate": {
                    c: power.requested[c] for c in core_list},
                "effective_khz": {
                    c: power.pstates[power.effective_index(c)].freq_khz
                    for c in core_list},
                "cstates_enabled": power.cstates_enabled,
                "tdp_cap_w": power.tdp_cap,
                "uncore_mult": power.uncore_mult,
                "power_w": power.power_watts(),
                "temp_c": power.temp_c,
                "throttled": power.is_throttled,
                "thermal_throttled": power.thermal_throttled,
            })
        return rows

    def set_pstate(self, index: int, scope: Optional[Scope] = None) -> None:
        for host, device, cores in self._resolve(scope):
            self._power(host, device).set_pstate(
                index, cores=None if cores is None else list(cores))

    def set_cstates(self, enabled: bool, scope: Optional[Scope] = None) -> None:
        for host, device, _ in self._resolve(scope):
            self._power(host, device).set_cstates(enabled)

    def set_tdp(self, watts: float, scope: Optional[Scope] = None) -> None:
        for host, device, _ in self._resolve(scope):
            self._power(host, device).set_tdp_cap(watts)

    def set_uncore(self, mult: float, scope: Optional[Scope] = None) -> None:
        for host, device, _ in self._resolve(scope):
            self._power(host, device).set_uncore(mult)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cards = sum(len(m.devices) for m in self.machines)
        return f"<PowerControl machines={len(self.machines)} cards={cards}>"
