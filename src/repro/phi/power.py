"""Power/thermal model for the Knights Corner card (opt-in).

The real Phi's performance envelope is power-bound: Fang et al.'s KNC
study ties achieved DGEMM and bandwidth directly to frequency and power
limits, and operational reports flag power efficiency as the card's
defining constraint.  This module gives the simulated card that
envelope:

* **P-states** — a frequency/voltage ladder derived from each
  :class:`~repro.phi.specs.PhiSKU` (100 MHz steps from the SKU clock
  down to a 600 MHz floor, voltage scaling linearly with frequency).
  Each core carries a *requested* state; the governor may impose a
  lower *floor* on all of them.
* **C-states** — idle cores (no resident threads, per the scheduler's
  round-robin placement) drop into C6 when C-states are enabled,
  otherwise they burn C0-idle power at their effective clock.
* **Uncore** — the ring/GDDR domain has its own multiplier; lowering
  it saves uncore watts and slows the SCIF/RMA datapath.
* **Thermal** — an exponential (RC) model: die temperature relaxes
  toward ``ambient + P * R`` with time constant ``tau``, integrated
  exactly over every piecewise-constant power segment.
* **Throttle loop** — a RAPL-style TDP cap (pick the fastest P-state
  floor whose card power fits under the cap) plus a thermal trip point
  with hysteresis (trip forces the lowest P-state until the die cools
  ``trip - hysteresis``).

Everything is closed-form and lazy: :meth:`PhiPowerModel.advance`
integrates energy/residency/temperature up to ``sim.now`` using the
state held since the previous advance, so the model is exact no matter
how sparsely it is polled.  A governor tick (``sim.call_at`` chain)
bounds staleness while compute jobs run — it re-arms only while the
scheduler is busy, so an idle simulation still drains its event queue
and ``sim.run()`` terminates.

The model feeds performance two ways:

* :meth:`multiplier` scales the uOS scheduler's processor-sharing
  rates (DGEMM Figs 6-8 become power-dependent);
* :meth:`cost_multiplier` scales the vPHI registry's declarative
  fixed-cost hooks (guest op latency becomes power-dependent), using
  the uOS service core's effective clock — that is where the card-side
  driver runs — divided by the uncore multiplier for the datapath.

Both are >= 1 slowdowns (never a speedup), which is the monotonicity
property the Hypothesis suite pins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..sim import SimError, Simulator
from .specs import PhiSKU

__all__ = [
    "CSTATES",
    "PState",
    "PowerConfig",
    "PhiPowerModel",
    "pstate_table",
]

#: P-state ladder parameters: 100 MHz steps down to a 600 MHz floor.
PSTATE_STEP_HZ = 100e6
PSTATE_FLOOR_HZ = 600e6

#: Core voltage range across the ladder (P0 .. deepest).
V_MAX = 1.05
V_MIN = 0.85

#: C-state catalog: residual power as a fraction of the core's active
#: power budget.  C0_IDLE is an un-gated idle core (clock running, no
#: issue) and still scales with the effective V/f point; C6 is power
#: gated and burns a flat trickle.
CSTATES = {"C0": 1.0, "C0_IDLE": 0.30, "C6": 0.02}


@dataclass(frozen=True)
class PState:
    """One frequency/voltage operating point."""

    index: int
    freq_hz: float
    voltage: float

    @property
    def freq_khz(self) -> int:
        return int(self.freq_hz / 1e3)


def pstate_table(sku: PhiSKU) -> tuple[PState, ...]:
    """Derive the P-state ladder for one SKU (P0 = the SKU clock)."""
    freqs = []
    f = float(sku.clock_hz)
    while f >= PSTATE_FLOOR_HZ - 1.0:
        freqs.append(f)
        f -= PSTATE_STEP_HZ
    if len(freqs) < 2:  # pathological SKU clock near the floor
        freqs.append(max(freqs[0] / 2, PSTATE_FLOOR_HZ))
    f0, fmin = freqs[0], freqs[-1]
    span = (f0 - fmin) or 1.0
    return tuple(
        PState(i, f, V_MIN + (V_MAX - V_MIN) * (f - fmin) / span)
        for i, f in enumerate(freqs)
    )


@dataclass
class PowerConfig:
    """Knobs for the card power model (defaults match a tuned KNC).

    ``tdp_watts=None`` means "cap at the SKU's TDP": the power split is
    normalized so a fully loaded card at P0 dissipates exactly the SKU
    TDP, so the default cap never throttles — throttling is something a
    deployment opts into by capping below TDP (or by a thermal trip).
    """

    tdp_watts: Optional[float] = None
    ambient_c: float = 40.0
    trip_c: float = 95.0
    trip_hysteresis_c: float = 8.0
    #: thermal RC time constant (die + heatsink), seconds.
    thermal_tau_s: float = 2.0
    #: degC of steady-state rise per dissipated watt.
    thermal_resistance_c_per_w: float = 0.18
    #: governor tick while compute jobs are resident.
    governor_interval_s: float = 250e-6
    cstates_enabled: bool = True
    #: share of SKU TDP burned by the always-on base (fans, VRs, GDDR
    #: refresh) and by the uncore (ring + memory controllers); cores
    #: split the remainder evenly.
    idle_fraction: float = 0.25
    uncore_fraction: float = 0.15

    def __post_init__(self) -> None:
        if self.tdp_watts is not None and self.tdp_watts <= 0:
            raise SimError(f"tdp_watts must be > 0, got {self.tdp_watts}")
        if self.trip_hysteresis_c <= 0:
            raise SimError("trip_hysteresis_c must be > 0")
        if self.thermal_tau_s <= 0:
            raise SimError("thermal_tau_s must be > 0")
        if self.governor_interval_s <= 0:
            raise SimError("governor_interval_s must be > 0")
        if not 0.0 < self.idle_fraction + self.uncore_fraction < 1.0:
            raise SimError("idle_fraction + uncore_fraction must be in (0, 1)")


class PhiPowerModel:
    """Per-card power/thermal state machine with a closed throttle loop.

    Lifecycle: constructed with the device, attached to the uOS
    scheduler at boot (:meth:`attach_scheduler`), detached + restored
    to boot defaults on card reset (:meth:`reset_state`).  Accounting
    integrals (energy, residency, trips) are cumulative across resets —
    they describe the card's lifetime, not one boot.
    """

    #: bounds accepted by :meth:`set_uncore` (full speed .. deep save).
    UNCORE_MIN = 0.4
    UNCORE_MAX = 1.0

    def __init__(
        self,
        sim: Simulator,
        sku: PhiSKU,
        config: Optional[PowerConfig] = None,
        name: str = "mic0",
    ):
        self.sim = sim
        self.sku = sku
        self.config = config or PowerConfig()
        self.name = name
        self.tracer = None  # optionally bound by the owning Machine
        self.pstates = pstate_table(sku)
        cfg = self.config
        #: the boot-default cap :meth:`reset_state` restores.
        self.default_cap = float(cfg.tdp_watts if cfg.tdp_watts is not None
                                 else sku.tdp_watts)
        self.tdp_cap = self.default_cap
        #: per-core requested P-state index (pepc-settable).
        self.requested = [0] * sku.cores
        #: governor-imposed TDP floor (index; higher = slower).
        self.throttle_idx = 0
        self.thermal_throttled = False
        self.temp_c = cfg.ambient_c
        self.uncore_mult = 1.0
        self.cstates_enabled = cfg.cstates_enabled
        # power split (normalized to the SKU TDP at P0 full load)
        self.p_idle = cfg.idle_fraction * sku.tdp_watts
        self.p_uncore = cfg.uncore_fraction * sku.tdp_watts
        self.p_core = ((1.0 - cfg.idle_fraction - cfg.uncore_fraction)
                       * sku.tdp_watts / sku.cores)
        # lifetime accounting
        self.energy_j = 0.0
        self.throttled_time = 0.0
        self.pstate_residency = [0.0] * len(self.pstates)
        self.cstate_core_seconds = {c: 0.0 for c in CSTATES}
        self.max_temp_c = cfg.ambient_c
        self.thermal_trips = 0
        self.governor_ticks = 0
        self._scheduler = None
        self._last = sim.now
        self._armed = False
        self._gen = 0  # invalidates stale governor ticks

    # -- wiring --------------------------------------------------------
    def attach_scheduler(self, scheduler) -> None:
        """Bind the booted uOS scheduler (demand source + rate sink)."""
        self._scheduler = scheduler
        scheduler.power = self
        self.refresh()

    def detach_scheduler(self) -> None:
        if self._scheduler is not None and self._scheduler.power is self:
            self._scheduler.power = None
        self._scheduler = None
        self._gen += 1  # kill any armed governor tick
        self._armed = False

    def reset_state(self) -> None:
        """Restore power/clock state to boot defaults (card reset).

        The pre-reset segment is accounted first, then requested
        P-states, the throttle floor, the thermal accumulator, the TDP
        cap, uncore and C-state enablement all return to defaults — a
        post-reset card must not inherit the pre-reset throttle level.
        """
        self.advance()
        self.detach_scheduler()
        self.requested = [0] * self.sku.cores
        self.throttle_idx = 0
        self.thermal_throttled = False
        self.temp_c = self.config.ambient_c
        self.tdp_cap = self.default_cap
        self.uncore_mult = 1.0
        self.cstates_enabled = self.config.cstates_enabled

    # -- demand / effective state --------------------------------------
    def _demand(self) -> int:
        s = self._scheduler
        return s.total_demand if s is not None else 0

    def _floor(self) -> int:
        """The governor floor every core's request is clamped to."""
        if self.thermal_throttled:
            return len(self.pstates) - 1
        return self.throttle_idx

    @property
    def is_throttled(self) -> bool:
        """True when the floor forces some core below its request."""
        return self._floor() > min(self.requested)

    def effective_index(self, core: int) -> int:
        return max(self.requested[core], self._floor())

    def card_clock_hz(self) -> float:
        """The clock of the fastest effective core — the single number
        mpss exports as ``cores_frequency`` (live, throttle-aware)."""
        self.refresh()
        return self.pstates[max(min(self.requested), self._floor())].freq_hz

    def multiplier(self) -> float:
        """Mean effective-frequency fraction over the usable cores — the
        scheduler's processor-sharing rates scale by this (<= 1)."""
        floor = self._floor()
        f0 = self.pstates[0].freq_hz
        usable = self.sku.usable_cores
        total = sum(self.pstates[max(r, floor)].freq_hz
                    for r in self.requested[:usable])
        return total / (usable * f0)

    def cost_multiplier(self) -> float:
        """Slowdown applied to the registry's fixed cost hooks (>= 1).

        The card-side driver runs on the uOS service core (the reserved
        last core), so its effective clock sets the control-path cost;
        the uncore multiplier divides through for the ring/DMA datapath.
        """
        self.refresh()
        eff = self.pstates[max(self.requested[-1], self._floor())]
        return (self.pstates[0].freq_hz / eff.freq_hz) / self.uncore_mult

    # -- power ---------------------------------------------------------
    def power_watts(self, floor: Optional[int] = None,
                    demand: Optional[int] = None) -> float:
        """Instantaneous card power at the current (or supplied) state."""
        if floor is None:
            floor = self._floor()
        if demand is None:
            demand = self._demand()
        sku = self.sku
        active_user = min(demand, sku.usable_cores)
        f0 = self.pstates[0].freq_hz
        v0 = self.pstates[0].voltage
        watts = self.p_idle + self.p_uncore * self.uncore_mult
        uos_core = sku.cores - 1
        for core, req in enumerate(self.requested):
            st = self.pstates[max(req, floor)]
            scale = (st.freq_hz / f0) * (st.voltage / v0) ** 2
            if core == uos_core:
                active = self._scheduler is not None
            else:
                # round-robin placement fills cores from the bottom
                active = core < active_user
            if active:
                watts += self.p_core * scale
            elif self.cstates_enabled:
                watts += self.p_core * CSTATES["C6"]
            else:
                watts += self.p_core * CSTATES["C0_IDLE"] * scale
        return watts

    # -- integration ---------------------------------------------------
    def advance(self) -> None:
        """Integrate energy/residency/temperature up to ``sim.now``
        using the state held since the last advance (exact closed form
        for piecewise-constant power)."""
        now = self.sim.now
        dt = now - self._last
        if dt <= 0:
            return
        watts = self.power_watts()
        self.energy_j += watts * dt
        self.pstate_residency[self._floor()] += dt
        if self.is_throttled:
            self.throttled_time += dt
        active_user = min(self._demand(), self.sku.usable_cores)
        idle_user = self.sku.usable_cores - active_user
        busy = active_user + (1 if self._scheduler is not None else 0)
        self.cstate_core_seconds["C0"] += busy * dt
        idle_state = "C6" if self.cstates_enabled else "C0_IDLE"
        self.cstate_core_seconds[idle_state] += idle_user * dt
        cfg = self.config
        t_inf = cfg.ambient_c + watts * cfg.thermal_resistance_c_per_w
        self.temp_c = t_inf + (self.temp_c - t_inf) * math.exp(
            -dt / cfg.thermal_tau_s)
        if self.temp_c > self.max_temp_c:
            self.max_temp_c = self.temp_c
        self._last = now

    # -- throttle policy -----------------------------------------------
    def _policy(self) -> None:
        """Re-evaluate the closed loop: thermal trip first, then the
        RAPL-style cap (fastest floor whose card power fits)."""
        cfg = self.config
        if not self.thermal_throttled and self.temp_c >= cfg.trip_c:
            self.thermal_throttled = True
            self.thermal_trips += 1
            if self.tracer is not None:
                self.tracer.emit("phi.power", "thermal trip", card=self.name,
                                 temp_c=round(self.temp_c, 3))
        elif (self.thermal_throttled
              and self.temp_c <= cfg.trip_c - cfg.trip_hysteresis_c):
            self.thermal_throttled = False
        deepest = len(self.pstates) - 1
        floor = deepest
        for idx in range(len(self.pstates)):
            if self.power_watts(floor=idx) <= self.tdp_cap + 1e-9:
                floor = idx
                break
        if floor != self.throttle_idx:
            self.throttle_idx = floor
            if self.tracer is not None:
                self.tracer.count("phi.power.floor_changes")
        self._push_scale()

    def _push_scale(self) -> None:
        if self._scheduler is not None:
            self._scheduler.set_clock_scale(self.multiplier())

    def refresh(self) -> None:
        """Advance the integrals, then re-run the throttle policy.

        Safe to call at any cadence: the policy is a pure function of
        (temperature, demand, cap), not an incremental stepper, so
        extra refreshes never change the trajectory.
        """
        self.advance()
        self._policy()

    # -- governor ------------------------------------------------------
    def on_scheduler_change(self) -> None:
        """Demand changed (job submitted/retired): re-evaluate and make
        sure the governor is ticking while the card is busy."""
        self.refresh()
        if not self._armed and self._busy():
            self._arm()

    def _busy(self) -> bool:
        s = self._scheduler
        return s is not None and s.active_jobs > 0

    def _arm(self) -> None:
        self._gen += 1
        gen = self._gen
        self._armed = True
        self.sim.call_at(self.sim.now + self.config.governor_interval_s,
                         lambda: self._tick(gen))

    def _tick(self, gen: int) -> None:
        if gen != self._gen:
            return
        self.governor_ticks += 1
        self.refresh()
        if self._busy():
            self._arm()
        else:
            self._armed = False

    # -- pepc-facing setters -------------------------------------------
    def set_pstate(self, index: int, cores: Optional[list[int]] = None) -> None:
        """Request a P-state for some cores (default: all)."""
        if not 0 <= index < len(self.pstates):
            raise SimError(
                f"{self.name}: P-state {index} out of range "
                f"0..{len(self.pstates) - 1}")
        self.advance()
        for core in (range(self.sku.cores) if cores is None else cores):
            if not 0 <= core < self.sku.cores:
                raise SimError(f"{self.name}: no core {core}")
            self.requested[core] = index
        self._policy()

    def set_tdp_cap(self, watts: float) -> None:
        if watts <= 0:
            raise SimError(f"{self.name}: TDP cap must be > 0, got {watts}")
        self.advance()
        self.tdp_cap = float(watts)
        self._policy()

    def set_cstates(self, enabled: bool) -> None:
        self.advance()
        self.cstates_enabled = bool(enabled)
        self._policy()

    def set_uncore(self, mult: float) -> None:
        if not self.UNCORE_MIN <= mult <= self.UNCORE_MAX:
            raise SimError(
                f"{self.name}: uncore multiplier {mult} outside "
                f"[{self.UNCORE_MIN}, {self.UNCORE_MAX}]")
        self.advance()
        self.uncore_mult = float(mult)
        self._policy()

    # -- reporting -----------------------------------------------------
    def stats(self) -> dict:
        """Snapshot for ``analysis.power`` (advances to ``sim.now``)."""
        self.refresh()
        return {
            "card": self.name,
            "energy_j": self.energy_j,
            "throttled_time_s": self.throttled_time,
            "pstate_residency_s": list(self.pstate_residency),
            "cstate_core_seconds": dict(self.cstate_core_seconds),
            "temp_c": self.temp_c,
            "max_temp_c": self.max_temp_c,
            "thermal_trips": self.thermal_trips,
            "governor_ticks": self.governor_ticks,
            "tdp_cap_w": self.tdp_cap,
            "power_w": self.power_watts(),
            "clock_hz": self.pstates[max(min(self.requested),
                                         self._floor())].freq_hz,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<PhiPowerModel {self.name} floor=P{self._floor()} "
                f"cap={self.tdp_cap:.0f}W temp={self.temp_c:.1f}C>")
