"""Xeon Phi coprocessor device model."""

from .device import DeviceState, XeonPhiDevice
from .specs import SKUS, PhiSKU, sku

__all__ = ["DeviceState", "PhiSKU", "SKUS", "XeonPhiDevice", "sku"]
