"""Xeon Phi coprocessor device model."""

from .device import DeviceState, XeonPhiDevice
from .pepc import PowerControl, Scope
from .power import PhiPowerModel, PowerConfig, PState, pstate_table
from .specs import SKUS, PhiSKU, sku

__all__ = [
    "DeviceState",
    "PState",
    "PhiPowerModel",
    "PhiSKU",
    "PowerConfig",
    "PowerControl",
    "SKUS",
    "Scope",
    "XeonPhiDevice",
    "pstate_table",
    "sku",
]
