"""Xeon Phi (Knights Corner) SKU catalog.

The paper's testbed card is the 3120P; the other x100-family SKUs are
included so experiments can vary the device (an axis the paper leaves to
future work).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PhiSKU", "SKUS", "sku"]

GB = 1 << 30


@dataclass(frozen=True)
class PhiSKU:
    """Static silicon parameters of one coprocessor model."""

    name: str
    family: str
    cores: int
    threads_per_core: int
    clock_hz: float
    gddr_bytes: int
    gddr_bandwidth: float  # bytes/s
    tdp_watts: int

    @property
    def hw_threads(self) -> int:
        return self.cores * self.threads_per_core

    @property
    def peak_dp_flops(self) -> float:
        """512-bit FMA: 8 DP lanes x 2 flops per cycle per core."""
        return self.cores * self.clock_hz * 16

    @property
    def usable_cores(self) -> int:
        """One core is reserved for the uOS itself (§III)."""
        return self.cores - 1


SKUS: dict[str, PhiSKU] = {
    s.name: s
    for s in (
        PhiSKU("3120A", "x100", 57, 4, 1.10e9, 6 * GB, 240e9, 300),
        PhiSKU("3120P", "x100", 57, 4, 1.10e9, 6 * GB, 240e9, 300),
        PhiSKU("31S1P", "x100", 57, 4, 1.10e9, 8 * GB, 352e9, 270),
        PhiSKU("5110P", "x100", 60, 4, 1.053e9, 8 * GB, 320e9, 225),
        PhiSKU("7120P", "x100", 61, 4, 1.238e9, 16 * GB, 352e9, 300),
    )
}


def sku(name: str) -> PhiSKU:
    try:
        return SKUS[name]
    except KeyError:
        raise KeyError(f"unknown Xeon Phi SKU {name!r}; known: {sorted(SKUS)}") from None
