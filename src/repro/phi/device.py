"""The Xeon Phi PCIe device: GDDR, DMA engines, link attachment, state.

A :class:`XeonPhiDevice` is the hardware half; booting it creates a
:class:`~repro.uos.UOS` (the software half) on top.  The host talks to the
device exclusively through its PCIe link — doorbells for control, the DMA
engine for bulk data — which is the property vPHI inherits for free by
virtualizing SCIF above this layer.
"""

from __future__ import annotations

import enum
from typing import Optional

from ..mem import PhysicalMemory
from ..pcie import DMAEngine, LinkConfig, PCIeLink
from ..sim import Simulator, ms
from .specs import PhiSKU, sku

__all__ = ["DeviceState", "XeonPhiDevice"]


class DeviceState(enum.Enum):
    """mic driver card states (mirrors /sys/class/mic/micN/state)."""

    READY = "ready"
    BOOTING = "booting"
    ONLINE = "online"
    SHUTDOWN = "shutdown"
    RESET = "resetting"


class XeonPhiDevice:
    """One coprocessor card plugged into a PCIe slot."""

    #: simulated uOS boot time (Linux boot on the card takes ~10s of wall
    #: clock on real hardware; scaled down, it only orders events here).
    BOOT_TIME = ms(50)

    def __init__(
        self,
        sim: Simulator,
        model: str | PhiSKU = "3120P",
        index: int = 0,
        link_config: Optional[LinkConfig] = None,
    ):
        self.sim = sim
        self.sku = model if isinstance(model, PhiSKU) else sku(model)
        self.index = index
        self.name = f"mic{index}"
        self.gddr = PhysicalMemory(self.sku.gddr_bytes, name=f"{self.name}-gddr")
        self.link = PCIeLink(sim, link_config or LinkConfig(), name=f"{self.name}-pcie")
        self.dma = DMAEngine(sim, self.link, channels=8, name=f"{self.name}-dma")
        self.state = DeviceState.READY
        #: SCIF node id, assigned when the fabric attaches the card (host=0).
        self.node_id: Optional[int] = None
        #: the uOS instance once booted.
        self.uos = None

    #: simulated reset time (firmware handshake + GDDR retrain).
    RESET_TIME = ms(20)

    def boot(self):
        """Process: boot the uOS.  ``yield from device.boot()``."""
        from ..uos import UOS  # deferred: uos imports phi

        if self.state is DeviceState.ONLINE:
            return self.uos
        self.state = DeviceState.BOOTING
        yield self.sim.timeout(self.BOOT_TIME)
        self.uos = UOS(self.sim, self)
        self.state = DeviceState.ONLINE
        return self.uos

    def reset(self, fabric=None):
        """Process: hard-reset the card (``micctrl --reset``).

        The uOS dies, every SCIF endpoint on the card's node is swept
        (peers observe connection resets), and the card returns to READY
        awaiting a fresh :meth:`boot`.
        """
        self.state = DeviceState.RESET
        if fabric is not None and self.node_id is not None:
            fabric.node(self.node_id).reset()
        self.uos = None
        yield self.sim.timeout(self.RESET_TIME)
        self.state = DeviceState.READY
        return self

    def sysfs_attrs(self) -> dict[str, str]:
        """The attribute set the host mic driver exports for this card —
        what micnativeloadex reads, and what vPHI must replicate in-guest."""
        return {
            "family": self.sku.family,
            "version": self.sku.name,
            "state": self.state.value,
            "cores_count": str(self.sku.cores),
            "cores_frequency": str(int(self.sku.clock_hz)),
            "memsize": str(self.sku.gddr_bytes // 1024),  # KiB, like mpss
            "active_cores": str(self.sku.usable_cores),
            "post_code": "FF",
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<XeonPhiDevice {self.name} {self.sku.name} {self.state.value}>"
