"""The Xeon Phi PCIe device: GDDR, DMA engines, link attachment, state.

A :class:`XeonPhiDevice` is the hardware half; booting it creates a
:class:`~repro.uos.UOS` (the software half) on top.  The host talks to the
device exclusively through its PCIe link — doorbells for control, the DMA
engine for bulk data — which is the property vPHI inherits for free by
virtualizing SCIF above this layer.
"""

from __future__ import annotations

import enum
from typing import Optional

from ..mem import PhysicalMemory
from ..pcie import DMAEngine, LinkConfig, PCIeLink
from ..sim import SimError, Simulator, ms
from .specs import PhiSKU, sku

__all__ = ["DeviceState", "XeonPhiDevice"]


class DeviceState(enum.Enum):
    """mic driver card states (mirrors /sys/class/mic/micN/state)."""

    READY = "ready"
    BOOTING = "booting"
    ONLINE = "online"
    SHUTDOWN = "shutdown"
    RESET = "resetting"


class XeonPhiDevice:
    """One coprocessor card plugged into a PCIe slot."""

    #: simulated uOS boot time (Linux boot on the card takes ~10s of wall
    #: clock on real hardware; scaled down, it only orders events here).
    BOOT_TIME = ms(50)

    def __init__(
        self,
        sim: Simulator,
        model: str | PhiSKU = "3120P",
        index: int = 0,
        link_config: Optional[LinkConfig] = None,
        power_model: str = "none",
        power_config=None,
    ):
        self.sim = sim
        self.sku = model if isinstance(model, PhiSKU) else sku(model)
        self.index = index
        self.name = f"mic{index}"
        self.gddr = PhysicalMemory(self.sku.gddr_bytes, name=f"{self.name}-gddr")
        self.link = PCIeLink(sim, link_config or LinkConfig(), name=f"{self.name}-pcie")
        self.dma = DMAEngine(sim, self.link, channels=8, name=f"{self.name}-dma")
        self.state = DeviceState.READY
        #: SCIF node id, assigned when the fabric attaches the card (host=0).
        self.node_id: Optional[int] = None
        #: the uOS instance once booted.
        self.uos = None
        #: the power/thermal model, when opted in (``power_model="knc"``).
        self.power = None
        if power_model == "knc":
            from .power import PhiPowerModel

            self.power = PhiPowerModel(
                sim, self.sku, config=power_config, name=self.name)
        elif power_model != "none":
            raise SimError(
                f"unknown power model {power_model!r}; use 'none' or 'knc'")
        #: gate serializing boot/reset transitions (None when settled).
        self._transition = None

    #: simulated reset time (firmware handshake + GDDR retrain).
    RESET_TIME = ms(20)

    def _await_settled(self):
        """Process: wait out any in-flight boot/reset transition.

        Without this gate, two concurrent ``boot()`` processes while the
        state is BOOTING (or a boot racing a ``reset()``) each run the
        full sequence and construct their own UOS, silently orphaning
        one — peers would then talk to a uOS the device no longer owns.
        """
        while self._transition is not None:
            gate = self._transition
            if not gate.triggered:
                yield gate
            else:  # fired but not yet swept; settle on the next tick
                yield self.sim.timeout(0)

    def _open_transition(self):
        gate = self.sim.event(name=f"{self.name}-transition")
        self._transition = gate
        return gate

    def _close_transition(self, gate) -> None:
        self._transition = None
        if not gate.triggered:
            gate.succeed(None)

    def boot(self):
        """Process: boot the uOS.  ``yield from device.boot()``.

        Concurrent boots serialize on the transition gate and all
        return the *same* UOS instance.
        """
        from ..uos import UOS  # deferred: uos imports phi

        yield from self._await_settled()
        if self.state is DeviceState.ONLINE:
            return self.uos
        gate = self._open_transition()
        self.state = DeviceState.BOOTING
        try:
            yield self.sim.timeout(self.BOOT_TIME)
            self.uos = UOS(self.sim, self)
            self.state = DeviceState.ONLINE
            if self.power is not None:
                self.power.attach_scheduler(self.uos.scheduler)
            return self.uos
        finally:
            self._close_transition(gate)

    def reset(self, fabric=None):
        """Process: hard-reset the card (``micctrl --reset``).

        The uOS dies, every SCIF endpoint on the card's node is swept
        (peers observe connection resets), power/clock state returns to
        boot defaults (a post-reset card must not inherit the pre-reset
        throttle level), and the card returns to READY awaiting a fresh
        :meth:`boot`.  A reset racing an in-flight boot waits for the
        boot to settle first.
        """
        yield from self._await_settled()
        gate = self._open_transition()
        self.state = DeviceState.RESET
        try:
            if fabric is not None and self.node_id is not None:
                fabric.node(self.node_id).reset()
            if self.power is not None:
                self.power.reset_state()
            self.uos = None
            yield self.sim.timeout(self.RESET_TIME)
            self.state = DeviceState.READY
            return self
        finally:
            self._close_transition(gate)

    @property
    def current_clock_hz(self) -> float:
        """The card's live core clock: the SKU clock, or the effective
        (possibly throttled) frequency when the power model is on."""
        if self.power is not None:
            return self.power.card_clock_hz()
        return float(self.sku.clock_hz)

    def sysfs_attrs(self) -> dict[str, str]:
        """The attribute set the host mic driver exports for this card —
        what micnativeloadex reads, and what vPHI must replicate in-guest."""
        return {
            "family": self.sku.family,
            "version": self.sku.name,
            "state": self.state.value,
            "cores_count": str(self.sku.cores),
            # kHz, like mpss (and live: reflects the throttled clock)
            "cores_frequency": str(int(self.current_clock_hz / 1e3)),
            "memsize": str(self.sku.gddr_bytes // 1024),  # KiB, like mpss
            "active_cores": str(self.sku.usable_cores),
            "post_code": "FF",
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<XeonPhiDevice {self.name} {self.sku.name} {self.state.value}>"
