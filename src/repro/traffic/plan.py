"""Declarative traffic plans: tenants, QoS identities, workload mixes.

A :class:`TrafficPlan` is the unit the harness runs and the CLI
validates (``python -m repro qos --check plan.json``): an arbiter
policy, a duration, a seed, and a list of tenant groups, each with an
arrival process, a workload mix and a QoS identity (``share`` for wfq,
``priority`` for strict classes).  A group with ``count > 1`` expands
into that many identically-shaped tenants (``name-0`` .. ``name-N-1``),
which is how a 200-tenant oversubscription sweep stays a ten-line file.

Workload mixes draw from the paper's two microbenchmark op shapes
(:mod:`repro.workloads`): ``send`` (Fig 4 send/recv message) and
``rma_read`` / ``rma_write`` (Fig 5 remote RMA against a registered
window).  The presets match the regimes the paper sweeps: *interactive*
= small latency-bound sends, *bulk* = window-sized RMA, *mixed* = both.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from .arrivals import ArrivalProcess, make_arrivals

__all__ = ["WorkloadMix", "TenantSpec", "TrafficPlan"]

KB = 1 << 10

#: request kinds a mix may contain (the harness knows how to drive these).
KINDS = ("send", "rma_read", "rma_write")

#: the policies the card arbiter implements (mirrors CardArbiter.POLICIES
#: without importing the sim stack into the plan layer).
POLICIES = ("rr", "wfq", "priority")


@dataclass(frozen=True)
class WorkloadMix:
    """A weighted mix of request shapes: ``(kind, nbytes, weight)``."""

    name: str
    items: tuple[tuple[str, int, float], ...]

    def __post_init__(self):
        if not self.items:
            raise ValueError(f"mix {self.name!r} has no items")
        for kind, nbytes, weight in self.items:
            if kind not in KINDS:
                raise ValueError(
                    f"mix {self.name!r}: unknown kind {kind!r} "
                    f"(choose from {KINDS})"
                )
            if nbytes <= 0:
                raise ValueError(f"mix {self.name!r}: nbytes must be positive")
            if weight <= 0:
                raise ValueError(f"mix {self.name!r}: weight must be positive")

    def draw(self, rng: random.Random) -> tuple[str, int]:
        """One weighted draw -> ``(kind, nbytes)``."""
        total = sum(w for _, _, w in self.items)
        x = rng.random() * total
        for kind, nbytes, weight in self.items:
            x -= weight
            if x <= 0:
                return kind, nbytes
        kind, nbytes, _ = self.items[-1]  # pragma: no cover - fp slack
        return kind, nbytes

    @property
    def max_nbytes(self) -> int:
        return max(n for _, n, _ in self.items)

    # -- presets (the paper's two microbenchmark regimes) --------------
    @classmethod
    def interactive(cls) -> "WorkloadMix":
        """Small latency-bound sends (the Fig 4 send/recv shape)."""
        return cls("interactive", (
            ("send", 64, 0.5), ("send", 1 * KB, 0.35), ("send", 4 * KB, 0.15),
        ))

    @classmethod
    def bulk(cls) -> "WorkloadMix":
        """Window-sized RMA transfers (the Fig 5 remote-read shape)."""
        return cls("bulk", (
            ("rma_read", 128 * KB, 0.6), ("rma_write", 128 * KB, 0.4),
        ))

    @classmethod
    def mixed(cls) -> "WorkloadMix":
        """Interactive sends with an RMA tail — the contended regime."""
        return cls("mixed", (
            ("send", 1 * KB, 0.7), ("rma_read", 64 * KB, 0.2),
            ("rma_write", 64 * KB, 0.1),
        ))

    PRESETS = ("interactive", "bulk", "mixed")

    @classmethod
    def from_spec(cls, spec) -> "WorkloadMix":
        """A preset name or ``{"name": ..., "items": [[kind, nbytes, w]]}``."""
        if isinstance(spec, WorkloadMix):
            return spec
        if isinstance(spec, str):
            if spec not in cls.PRESETS:
                raise ValueError(
                    f"unknown mix preset {spec!r} (choose from {cls.PRESETS})"
                )
            return getattr(cls, spec)()
        if isinstance(spec, dict):
            items = spec.get("items")
            if not isinstance(items, (list, tuple)):
                raise ValueError(f"mix spec needs an 'items' list, got {spec!r}")
            return cls(
                str(spec.get("name", "custom")),
                tuple((str(k), int(n), float(w)) for k, n, w in items),
            )
        raise ValueError(f"bad mix spec {spec!r}")

    def to_dict(self):
        if self.name in self.PRESETS and self == getattr(
                WorkloadMix, self.name)():
            return self.name
        return {"name": self.name,
                "items": [list(item) for item in self.items]}


@dataclass
class TenantSpec:
    """One tenant group: QoS identity + traffic shape (+ replication)."""

    name: str
    arrivals: ArrivalProcess
    mix: WorkloadMix
    share: float = 1.0
    priority: int = 0
    count: int = 1

    def __post_init__(self):
        if not self.name:
            raise ValueError("tenant needs a name")
        if self.share < 0:
            raise ValueError(f"tenant {self.name!r}: share must be >= 0")
        if self.count < 1:
            raise ValueError(f"tenant {self.name!r}: count must be >= 1")

    def expand(self) -> list["TenantSpec"]:
        """Replicate a group into its individual tenants."""
        if self.count == 1:
            return [self]
        return [
            TenantSpec(f"{self.name}-{i}", self.arrivals, self.mix,
                       self.share, self.priority)
            for i in range(self.count)
        ]

    @classmethod
    def from_dict(cls, d: dict) -> "TenantSpec":
        if not isinstance(d, dict):
            raise ValueError(f"tenant spec must be a dict, got {d!r}")
        unknown = set(d) - {"name", "arrivals", "mix", "share", "priority",
                            "count"}
        if unknown:
            raise ValueError(
                f"tenant {d.get('name', '?')!r}: unknown keys {sorted(unknown)}"
            )
        if "arrivals" not in d:
            raise ValueError(f"tenant {d.get('name', '?')!r}: missing arrivals")
        return cls(
            name=str(d.get("name", "")),
            arrivals=make_arrivals(d["arrivals"]),
            mix=WorkloadMix.from_spec(d.get("mix", "interactive")),
            share=float(d.get("share", 1.0)),
            priority=int(d.get("priority", 0)),
            count=int(d.get("count", 1)),
        )

    def to_dict(self) -> dict:
        d = {"name": self.name, "arrivals": self.arrivals.to_dict(),
             "mix": self.mix.to_dict()}
        if self.share != 1.0:
            d["share"] = self.share
        if self.priority:
            d["priority"] = self.priority
        if self.count != 1:
            d["count"] = self.count
        return d


@dataclass
class TrafficPlan:
    """A complete open-loop experiment: policy + tenants + knobs."""

    tenants: list[TenantSpec]
    policy: str = "wfq"
    duration: float = 0.05
    seed: int = 0
    #: dispatch slots on the shared card arbiter (None = host cores).
    slots: Optional[int] = None
    backend_workers: int = 2
    max_inflight: int = 8
    #: admission watermarks applied to every tenant (None = no shedding).
    admit_queue_depth: Optional[int] = None
    admit_latency: Optional[float] = None
    #: cluster target: anything beyond 1x1 runs the plan on a
    #: :class:`~repro.cluster.Cluster` instead of a single machine,
    #: placing tenants by ``placement`` policy.
    hosts: int = 1
    cards_per_host: int = 1
    placement: str = "spread"
    extras: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r} (choose from {POLICIES})"
            )
        if not self.tenants:
            raise ValueError("plan has no tenants")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.hosts < 1 or self.cards_per_host < 1:
            raise ValueError("hosts and cards_per_host must be >= 1")
        if self.placement not in ("spread", "pack"):
            raise ValueError(
                f"unknown placement {self.placement!r} "
                "(choose from ('spread', 'pack'))"
            )
        if self.slots is not None and self.slots < 1:
            raise ValueError("slots must be >= 1 (or None for host cores)")
        if self.backend_workers < 1:
            raise ValueError("backend_workers must be >= 1 (open-loop load "
                             "needs pooled dispatch)")
        names: set[str] = set()
        for t in self.expanded():
            if t.name in names:
                raise ValueError(f"duplicate tenant name {t.name!r}")
            names.add(t.name)

    def expanded(self) -> list[TenantSpec]:
        """Every individual tenant, groups replicated out."""
        out: list[TenantSpec] = []
        for t in self.tenants:
            out.extend(t.expand())
        return out

    # -- serialization -------------------------------------------------
    @classmethod
    def from_dict(cls, d: dict) -> "TrafficPlan":
        if not isinstance(d, dict):
            raise ValueError(f"plan must be a dict, got {type(d).__name__}")
        known = {"tenants", "policy", "duration", "seed", "slots",
                 "backend_workers", "max_inflight", "admit_queue_depth",
                 "admit_latency", "hosts", "cards_per_host", "placement"}
        unknown = set(d) - known
        if unknown:
            raise ValueError(f"plan: unknown keys {sorted(unknown)}")
        tenants_raw = d.get("tenants")
        if not isinstance(tenants_raw, list) or not tenants_raw:
            raise ValueError("plan needs a non-empty 'tenants' list")
        kwargs = {k: d[k] for k in known - {"tenants"} if k in d}
        return cls(tenants=[TenantSpec.from_dict(t) for t in tenants_raw],
                   **kwargs)

    @classmethod
    def from_file(cls, path) -> "TrafficPlan":
        with open(path) as fh:
            try:
                raw = json.load(fh)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}: not valid JSON ({exc})") from None
        return cls.from_dict(raw)

    def to_dict(self) -> dict:
        d: dict = {"policy": self.policy, "duration": self.duration,
                   "seed": self.seed,
                   "tenants": [t.to_dict() for t in self.tenants]}
        if self.slots is not None:
            d["slots"] = self.slots
        d["backend_workers"] = self.backend_workers
        d["max_inflight"] = self.max_inflight
        if self.admit_queue_depth is not None:
            d["admit_queue_depth"] = self.admit_queue_depth
        if self.admit_latency is not None:
            d["admit_latency"] = self.admit_latency
        if self.is_cluster:
            d["hosts"] = self.hosts
            d["cards_per_host"] = self.cards_per_host
            d["placement"] = self.placement
        return d

    @property
    def is_cluster(self) -> bool:
        """True when the plan targets more than one card."""
        return self.hosts > 1 or self.cards_per_host > 1

    # -- canned plans --------------------------------------------------
    @classmethod
    def smoke(cls, tenants: int = 8, policy: str = "wfq",
              oversubscription: float = 10.0,
              duration: float = 0.02, seed: int = 0) -> "TrafficPlan":
        """The qos-smoke shape: ``tenants`` equal-share interactive
        tenants offering ``oversubscription`` times the card's dispatch
        capacity, with admission watermarks armed."""
        slots = 4
        # a 1 KB send holds a dispatch slot for ~10 us in the calibrated
        # cost model -> capacity ~ slots / 10us; spread the oversubscribed
        # offered load evenly over the tenants.
        per_tenant = oversubscription * slots * 1e5 / tenants
        return cls(
            tenants=[TenantSpec(
                name="tenant",
                arrivals=make_arrivals({"kind": "poisson", "rate": per_tenant}),
                mix=WorkloadMix.interactive(),
                count=tenants,
            )],
            policy=policy, duration=duration, seed=seed, slots=slots,
            admit_queue_depth=16,
        )


def plan_check(plan: TrafficPlan) -> list[str]:
    """Human-readable validation summary lines for ``--check``."""
    lines = []
    expanded = plan.expanded()
    total = 0
    rng_base = plan.seed
    for i, t in enumerate(expanded[:4]):
        n = t.arrivals.count(rng_base + i, plan.duration)
        total += n
        lines.append(
            f"  {t.name}: {type(t.arrivals).__name__.lower()} "
            f"mix={t.mix.name} share={t.share:g} prio={t.priority} "
            f"-> {n} arrivals in {plan.duration:g}s"
        )
    if len(expanded) > 4:
        lines.append(f"  ... and {len(expanded) - 4} more tenants")
    lines.insert(0, (
        f"plan ok: {len(expanded)} tenants, policy={plan.policy}, "
        f"duration={plan.duration:g}s, seed={plan.seed}"
    ))
    if plan.is_cluster:
        lines.insert(1, (
            f"  cluster: {plan.hosts} hosts x {plan.cards_per_host} cards, "
            f"placement={plan.placement}"
        ))
    return lines
