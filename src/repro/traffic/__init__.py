"""Open-loop traffic generation for multi-tenant QoS experiments.

Every benchmark the repo had before this package was **closed-loop**:
each client issues its next request only after the previous one
completes, so the offered load self-throttles exactly when the system
degrades — the regime where fairness and tail latency go wrong is
unreachable by construction.  This package generates **open-loop**
arrivals (the arrival process is independent of completions, the
standard methodology for tail-latency studies): seeded deterministic
arrival streams (:mod:`~repro.traffic.arrivals`), declarative per-tenant
plans with workload mixes and QoS identities
(:mod:`~repro.traffic.plan`), and a harness that stands up one machine
with N tenant VMs and drives a plan end-to-end
(:mod:`~repro.traffic.harness`).

The workload mixes reuse the paper's own microbenchmark shapes
(:mod:`repro.workloads`): small ``scif_send`` messages are the Fig 4
send/recv latency op, bulk ``vreadfrom``/``vwriteto`` are the Fig 5
remote-RMA throughput op.
"""

from .arrivals import MMPP, ArrivalProcess, Diurnal, Poisson, make_arrivals
from .harness import HarnessResult, TenantLoad, run_plan
from .plan import TenantSpec, TrafficPlan, WorkloadMix

__all__ = [
    "ArrivalProcess",
    "Diurnal",
    "HarnessResult",
    "MMPP",
    "Poisson",
    "TenantLoad",
    "TenantSpec",
    "TrafficPlan",
    "WorkloadMix",
    "make_arrivals",
    "run_plan",
]
