"""The open-loop load harness: drive a :class:`TrafficPlan` end-to-end.

One machine, one shared card, one tenant VM per expanded tenant spec.
Each tenant gets a card-side peer (accept + registered window, the A10
server shape) and an open-loop *pacer* process: arrivals come from the
tenant's seeded arrival process, and every arrival spawns an independent
one-request guest process immediately — never waiting for earlier
requests, which is the whole point of open-loop load.  Back-pressure
therefore shows up the only way it can: as typed EBUSY sheds from
admission control (counted), not as silently throttled offered load.

The harness's conservation invariant — pinned by a Hypothesis property
in the test suite — is that **every offered arrival gets exactly one
typed outcome**: completed, shed (EBUSY), or errored (any other
ScifError).  ``HarnessResult.check_conservation`` asserts it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..scif.errors import EBUSY, ScifError
from ..system import Machine
from ..vphi import VPhiConfig
from ..vphi.pool import CardArbiter
from .plan import TenantSpec, TrafficPlan

__all__ = ["TenantLoad", "HarnessResult", "run_plan"]

MB = 1 << 20
PORT_BASE = 27_000
#: guest RAM per tenant VM — lazy chunk-backed, so hundreds of tenants
#: fit the 64 GB host budget.
TENANT_RAM = 64 * MB


@dataclass
class TenantLoad:
    """One tenant's live counters (mutated by its request processes)."""

    spec: TenantSpec
    vm: object = None
    #: arrivals the pacer emitted (open-loop offered load).
    offered: int = 0
    #: typed outcomes — the three disjoint fates of an arrival.
    completed: int = 0
    shed: int = 0
    errors: int = 0
    bytes_done: int = 0
    #: per-request completion latencies (arrival -> typed completion),
    #: for completed requests only.
    latencies: list = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def settled(self) -> int:
        return self.completed + self.shed + self.errors


@dataclass
class HarnessResult:
    """Everything a plan run produced, ready for the analysis layer."""

    plan: TrafficPlan
    machine: Machine
    loads: list[TenantLoad]
    #: simulated time the measurement window opened (all tenants ready).
    t_start: float = 0.0
    #: simulated time the last completion landed.
    t_end: float = 0.0
    #: the Cluster the plan ran on (None for single-machine plans).
    cluster: object = None

    @property
    def arbiter(self) -> Optional[CardArbiter]:
        return getattr(self.machine, "vphi_arbiter", None)

    @property
    def duration(self) -> float:
        return self.plan.duration

    def arbiters(self) -> list[CardArbiter]:
        """Every card arbiter the run dispatched through."""
        machines = (self.cluster.machines if self.cluster is not None
                    else [self.machine])
        out: list[CardArbiter] = []
        for m in machines:
            per_card = getattr(m, "card_arbiters", None)
            if per_card:
                out.extend(per_card.values())
            else:
                arb = getattr(m, "vphi_arbiter", None)
                if arb is not None:
                    out.append(arb)
        return out

    def check_conservation(self) -> None:
        """Every offered arrival got exactly one typed outcome."""
        for load in self.loads:
            if load.offered != load.settled:
                raise AssertionError(
                    f"tenant {load.name!r} stranded "
                    f"{load.offered - load.settled} of {load.offered} "
                    f"arrivals (completed={load.completed} "
                    f"shed={load.shed} errors={load.errors})"
                )
        arbiters = self.arbiters()
        arb = self.arbiter
        if arb is not None and arb not in arbiters:
            arbiters.append(arb)
        for arb in arbiters:
            if arb.free != arb.slots:
                raise AssertionError(
                    f"{arb.name} leaked credits: "
                    f"free={arb.free} slots={arb.slots}"
                )


def _spawn_peer(machine, port: int, window: int, card: int = 0):
    """Card-side peer: accept one tenant, register a read/write window.

    Fulfils ``ready`` with the registered offset; sends from the tenant
    land in the endpoint's rx FIFO (no drain loop needed — SCIF sends
    complete on enqueue + ack, exactly like the A10 server shape).
    """
    sproc = machine.card_process(f"qos-peer-{port}", card=card)
    slib = machine.scif(sproc)
    ready = machine.sim.event()

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, port)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        vma = sproc.address_space.mmap(window, populate=True)
        roff = yield from slib.register(conn, vma.start, window)
        ready.succeed(roff)

    machine.sim.spawn(server())
    return ready


def _one_request(lib, ep, vma, roff, kind: str, nbytes: int, payload,
                 load: TenantLoad, sim):
    """One open-loop request: submit, classify the typed outcome."""
    t0 = sim.now
    try:
        if kind == "send":
            yield from lib.send(ep, payload[:nbytes])
        elif kind == "rma_read":
            yield from lib.vreadfrom(ep, vma.start, nbytes, roff)
        else:  # rma_write
            yield from lib.vwriteto(ep, vma.start, nbytes, roff)
    except EBUSY:
        load.shed += 1
        return
    except ScifError:
        load.errors += 1
        return
    load.completed += 1
    load.bytes_done += nbytes
    load.latencies.append(sim.now - t0)


def _tenant(machine, vm, spec: TenantSpec, port: int, ready, gate,
            seed: int, duration: float, load: TenantLoad,
            node: Optional[int] = None):
    """Connection setup, then the open-loop pacer."""
    gproc = vm.guest_process(f"{spec.name}-load")
    lib = vm.vphi.libscif(gproc)
    sim = machine.sim
    window = max(spec.mix.max_nbytes, 4096)
    payload = np.zeros(max(n for k, n, _ in spec.mix.items if k == "send")
                       if any(k == "send" for k, _, _ in spec.mix.items)
                       else 1, dtype=np.uint8)
    peer_node = machine.card_node_id(0) if node is None else node

    def pacer():
        ep = yield from lib.open()
        yield from lib.connect(ep, (peer_node, port))
        roff = yield ready
        vma = gproc.address_space.mmap(window, populate=True)
        gate.arrive()
        yield gate.open
        t_start = sim.now
        mix_rng = random.Random(seed ^ 0x9E3779B9)
        for t in spec.arrivals.times(seed, duration):
            due = t_start + t
            if due > sim.now:
                yield sim.timeout(due - sim.now)
            kind, nbytes = spec.mix.draw(mix_rng)
            load.offered += 1
            # open-loop: the request rides its own process; the pacer
            # never waits for it
            vm.spawn_guest(_one_request(lib, ep, vma, roff, kind, nbytes,
                                        payload, load, sim))

    return vm.spawn_guest(pacer())


class _Gate:
    """Count-down barrier: opens once every tenant finished setup, so
    all pacers measure the same window."""

    def __init__(self, sim, n: int):
        self.sim = sim
        self.open = sim.event(name="qos-gate")
        self._left = n

    def arrive(self) -> None:
        self._left -= 1
        if self._left == 0:
            self.open.succeed(self.sim.now)


def run_plan(plan: TrafficPlan, machine: Optional[Machine] = None,
             cluster=None) -> HarnessResult:
    """Stand up the machine, drive the plan, return the result.

    Deterministic in ``plan.seed``: tenant ``i`` draws its arrival and
    mix streams from ``seed * 1_000_003 + i``, so two runs of the same
    plan produce identical traces (the chaos harness replays failures
    by seed alone).

    A plan whose :attr:`~repro.traffic.plan.TrafficPlan.is_cluster` is
    true (or an explicit ``cluster=``) runs on a
    :class:`~repro.cluster.Cluster` instead: tenants placed across
    cards by the plan's placement policy, each dispatching through its
    own card's arbiter.  The single-machine path below is untouched by
    the cluster fields, so existing plans produce identical traces.
    """
    if cluster is not None or plan.is_cluster:
        return _run_cluster_plan(plan, cluster)
    if machine is None:
        machine = Machine(cards=1).boot()
    tenants = plan.expanded()
    slots = plan.slots or machine.host_params.cores
    # pre-create the shared arbiter so the plan's policy applies from
    # the first install (install_vphi reuses machine.vphi_arbiter)
    arbiter = getattr(machine, "vphi_arbiter", None)
    if arbiter is None:
        arbiter = CardArbiter(machine.sim, slots=slots, policy=plan.policy)
        machine.vphi_arbiter = arbiter
    else:
        arbiter.set_policy(plan.policy)
    gate = _Gate(machine.sim, len(tenants))
    loads: list[TenantLoad] = []
    pacers = []
    for i, spec in enumerate(tenants):
        cfg = VPhiConfig(
            backend_workers=plan.backend_workers,
            max_inflight=plan.max_inflight,
            qos_share=spec.share,
            qos_priority=spec.priority,
            admit_queue_depth=plan.admit_queue_depth,
            admit_latency=plan.admit_latency,
        )
        vm = machine.create_vm(spec.name, ram_bytes=TENANT_RAM,
                               vphi_config=cfg)
        port = PORT_BASE + i
        window = max(spec.mix.max_nbytes, 4096)
        ready = _spawn_peer(machine, port, window)
        load = TenantLoad(spec=spec, vm=vm)
        loads.append(load)
        seed = plan.seed * 1_000_003 + i
        pacers.append(_tenant(machine, vm, spec, port, ready, gate, seed,
                              plan.duration, load))
    machine.run()
    for pacer, load in zip(pacers, loads):
        if not pacer.triggered:
            raise AssertionError(f"tenant {load.name!r} pacer deadlocked")
    result = HarnessResult(
        plan=plan, machine=machine, loads=loads,
        t_start=gate.open.value if gate.open.triggered else 0.0,
        t_end=machine.sim.now,
    )
    return result


def _run_cluster_plan(plan: TrafficPlan, cluster=None) -> HarnessResult:
    """The cluster flavour of :func:`run_plan`.

    Tenants are placed onto cards by the cluster's scheduler; each gets
    a peer on *its own* card (connect addresses resolve through
    :meth:`Cluster.node_of`), and dispatches through that card's
    arbiter under the plan's policy.  Conservation then quantifies over
    every card arbiter the run touched.
    """
    from ..cluster import Cluster

    if cluster is None:
        cluster = Cluster(hosts=plan.hosts,
                          cards_per_host=plan.cards_per_host,
                          placement=plan.placement)
        cluster.boot()
    slots = plan.slots or cluster.machines[0].host_params.cores
    # pre-create every card arbiter at the plan's slot count + policy
    for ref in cluster.cards:
        cluster.machine(ref).arbiter_for(ref.card, slots=slots,
                                         policy=plan.policy)
    tenants = plan.expanded()
    gate = _Gate(cluster.sim, len(tenants))
    loads: list[TenantLoad] = []
    pacers = []
    for i, spec in enumerate(tenants):
        cfg = VPhiConfig(
            backend_workers=plan.backend_workers,
            max_inflight=plan.max_inflight,
            qos_share=spec.share,
            qos_priority=spec.priority,
            admit_queue_depth=plan.admit_queue_depth,
            admit_latency=plan.admit_latency,
        )
        vm = cluster.create_vm(spec.name, ram_bytes=TENANT_RAM,
                               vphi_config=cfg)
        ref = cluster.placement_of(spec.name)
        machine = cluster.machine(ref)
        port = PORT_BASE + i
        window = max(spec.mix.max_nbytes, 4096)
        ready = _spawn_peer(machine, port, window, card=ref.card)
        load = TenantLoad(spec=spec, vm=vm)
        loads.append(load)
        seed = plan.seed * 1_000_003 + i
        pacers.append(_tenant(machine, vm, spec, port, ready, gate, seed,
                              plan.duration, load,
                              node=cluster.node_of(ref)))
    cluster.run()
    for pacer, load in zip(pacers, loads):
        if not pacer.triggered:
            raise AssertionError(f"tenant {load.name!r} pacer deadlocked")
    return HarnessResult(
        plan=plan, machine=cluster.machines[0], loads=loads,
        t_start=gate.open.value if gate.open.triggered else 0.0,
        t_end=cluster.sim.now,
        cluster=cluster,
    )
