"""Open-loop arrival processes: Poisson, bursty (MMPP), diurnal.

Each process yields *absolute* arrival times from a private
``random.Random`` stream, so a ``(process, seed)`` pair is a fully
deterministic traffic trace — the chaos harness can replay a failing
seed bit-for-bit.  The three shapes cover the standard load regimes:

* :class:`Poisson` — memoryless steady-state load (exponential gaps);
* :class:`MMPP` — a two-state Markov-modulated Poisson process, the
  textbook bursty-traffic model: dwell in a quiet state at one rate,
  flip to a burst state at another, with exponentially distributed
  dwell times;
* :class:`Diurnal` — a sinusoidally rate-modulated Poisson process
  (day/night load swing compressed to simulation scale), sampled by
  Lewis-Shedler thinning against the peak rate.

``make_arrivals`` builds any of them from a plan-file dict, and
``to_dict`` round-trips back, so traffic plans serialize cleanly.
"""

from __future__ import annotations

import math
import random
from typing import Iterator

__all__ = ["ArrivalProcess", "Poisson", "MMPP", "Diurnal", "make_arrivals"]


class ArrivalProcess:
    """Base arrival process: a seeded stream of absolute arrival times."""

    kind = "base"

    def times(self, seed: int, horizon: float) -> Iterator[float]:
        """Absolute arrival times in ``[0, horizon)``, deterministic in
        ``seed``."""
        raise NotImplementedError

    def count(self, seed: int, horizon: float) -> int:
        """How many arrivals this trace offers (for plan validation)."""
        return sum(1 for _ in self.times(seed, horizon))

    def to_dict(self) -> dict:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(f"{k}={v:g}" for k, v in self.to_dict().items()
                         if k != "kind")
        return f"<{type(self).__name__} {body}>"


class Poisson(ArrivalProcess):
    """Memoryless arrivals at ``rate`` requests per simulated second."""

    kind = "poisson"

    def __init__(self, rate: float):
        if rate <= 0:
            raise ValueError(f"poisson rate must be positive, got {rate}")
        self.rate = rate

    def times(self, seed: int, horizon: float) -> Iterator[float]:
        rng = random.Random(seed)
        t = rng.expovariate(self.rate)
        while t < horizon:
            yield t
            t += rng.expovariate(self.rate)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "rate": self.rate}


class MMPP(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (bursty traffic).

    The process dwells in a *quiet* state emitting at ``rate`` and a
    *burst* state emitting at ``burst_rate``; dwell times are
    exponential with means ``mean_quiet`` / ``mean_burst``.
    """

    kind = "mmpp"

    def __init__(self, rate: float, burst_rate: float,
                 mean_quiet: float, mean_burst: float):
        if rate <= 0 or burst_rate <= 0:
            raise ValueError("mmpp rates must be positive")
        if mean_quiet <= 0 or mean_burst <= 0:
            raise ValueError("mmpp dwell means must be positive")
        self.rate = rate
        self.burst_rate = burst_rate
        self.mean_quiet = mean_quiet
        self.mean_burst = mean_burst

    def times(self, seed: int, horizon: float) -> Iterator[float]:
        rng = random.Random(seed)
        t = 0.0
        burst = False
        while t < horizon:
            dwell = rng.expovariate(
                1.0 / (self.mean_burst if burst else self.mean_quiet)
            )
            state_end = min(t + dwell, horizon)
            rate = self.burst_rate if burst else self.rate
            # Poisson arrivals inside this dwell interval
            a = t + rng.expovariate(rate)
            while a < state_end:
                yield a
                a += rng.expovariate(rate)
            t = state_end
            burst = not burst

    def to_dict(self) -> dict:
        return {"kind": self.kind, "rate": self.rate,
                "burst_rate": self.burst_rate,
                "mean_quiet": self.mean_quiet,
                "mean_burst": self.mean_burst}


class Diurnal(ArrivalProcess):
    """Sinusoidally modulated Poisson arrivals (day/night swing).

    Instantaneous rate ``rate * (1 + amplitude * sin(2*pi*t/period))``,
    sampled by thinning against the peak rate — exact, not binned.
    """

    kind = "diurnal"

    def __init__(self, rate: float, amplitude: float = 0.5,
                 period: float = 1.0):
        if rate <= 0:
            raise ValueError(f"diurnal rate must be positive, got {rate}")
        if not 0.0 <= amplitude < 1.0:
            raise ValueError("diurnal amplitude must be in [0, 1)")
        if period <= 0:
            raise ValueError("diurnal period must be positive")
        self.rate = rate
        self.amplitude = amplitude
        self.period = period

    def times(self, seed: int, horizon: float) -> Iterator[float]:
        rng = random.Random(seed)
        peak = self.rate * (1.0 + self.amplitude)
        t = 0.0
        while True:
            t += rng.expovariate(peak)
            if t >= horizon:
                return
            inst = self.rate * (
                1.0 + self.amplitude * math.sin(2.0 * math.pi * t / self.period)
            )
            if rng.random() < inst / peak:
                yield t

    def to_dict(self) -> dict:
        return {"kind": self.kind, "rate": self.rate,
                "amplitude": self.amplitude, "period": self.period}


_KINDS = {cls.kind: cls for cls in (Poisson, MMPP, Diurnal)}


def make_arrivals(spec: dict) -> ArrivalProcess:
    """Build an arrival process from a plan-file dict.

    ``{"kind": "poisson", "rate": 2000}`` and friends; every parameter
    except ``kind`` is passed to the constructor, so unknown keys fail
    loudly instead of being silently dropped.
    """
    if not isinstance(spec, dict):
        raise ValueError(f"arrival spec must be a dict, got {type(spec).__name__}")
    spec = dict(spec)
    kind = spec.pop("kind", None)
    cls = _KINDS.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown arrival kind {kind!r} (choose from {sorted(_KINDS)})"
        )
    try:
        return cls(**spec)
    except TypeError as exc:
        raise ValueError(f"bad {kind} arrival spec {spec}: {exc}") from None
