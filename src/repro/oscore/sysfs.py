"""A tiny sysfs: a path-addressable attribute tree.

The host MIC driver exports card information under
``/sys/class/mic/mic0/`` (family, version, state, memory size, core
count, ...).  Intel's tools — ``micnativeloadex`` among them — read these
attributes to decide how to drive the card, so vPHI must surface the same
tree inside the guest (§III, *Implementation details*).
"""

from __future__ import annotations

from typing import Callable, Iterator, Union

__all__ = ["Sysfs", "SysfsError"]

AttrValue = Union[str, Callable[[], str]]


class SysfsError(KeyError):
    """Missing sysfs path (ENOENT)."""


class Sysfs:
    """Flat path -> attribute store with directory listing."""

    def __init__(self) -> None:
        self._attrs: dict[str, AttrValue] = {}

    def publish(self, path: str, value: AttrValue) -> None:
        """Register an attribute.  ``value`` may be a string or a callable
        evaluated on every read (live attributes like ``state``)."""
        self._attrs[self._norm(path)] = value

    def read(self, path: str) -> str:
        path = self._norm(path)
        try:
            value = self._attrs[path]
        except KeyError:
            raise SysfsError(f"sysfs: no attribute {path!r}") from None
        return value() if callable(value) else value

    def exists(self, path: str) -> bool:
        return self._norm(path) in self._attrs

    def listdir(self, path: str) -> list[str]:
        """Immediate children (attributes and subdirectories) of ``path``."""
        prefix = self._norm(path)
        prefix = prefix + "/" if prefix else ""
        children = set()
        for key in self._attrs:
            if key.startswith(prefix):
                children.add(key[len(prefix):].split("/", 1)[0])
        if not children and prefix:
            raise SysfsError(f"sysfs: no directory {path!r}")
        return sorted(children)

    def remove(self, path: str) -> None:
        try:
            del self._attrs[self._norm(path)]
        except KeyError:
            raise SysfsError(f"sysfs: no attribute {path!r}") from None

    def walk(self) -> Iterator[tuple[str, str]]:
        for key in sorted(self._attrs):
            yield key, self.read(key)

    @staticmethod
    def _norm(path: str) -> str:
        return "/".join(p for p in path.split("/") if p)
