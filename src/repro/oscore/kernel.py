"""Minimal OS kernel substrate shared by the host Linux and the card uOS.

A :class:`Kernel` owns a physical memory, a kernel-space allocator
(kmalloc), a kernel address space, and a process table.  An
:class:`OSProcess` owns a user address space and is the execution context
SCIF calls run in (its identity is what makes "multiple VMs are just
multiple host processes" work for sharing).
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..mem import AddressSpace, KernelAllocator, PhysicalMemory
from ..sim import Simulator

__all__ = ["Kernel", "OSProcess"]


class OSProcess:
    """One process: a user address space plus identity."""

    def __init__(self, kernel: "Kernel", pid: int, name: str):
        self.kernel = kernel
        self.pid = pid
        self.name = name
        self.address_space = AddressSpace(kernel.phys, name=f"{name}[{pid}]")
        #: open file-descriptor table (fd -> object); chardevs populate it.
        self.fds: dict[int, object] = {}
        self._next_fd = 3
        self.alive = True

    def install_fd(self, obj: object) -> int:
        fd = self._next_fd
        self._next_fd += 1
        self.fds[fd] = obj
        return fd

    def close_fd(self, fd: int) -> object:
        return self.fds.pop(fd)

    def exit(self) -> None:
        self.alive = False
        self.kernel.reap(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<OSProcess {self.name!r} pid={self.pid}>"


class Kernel:
    """Base kernel: memory management + process table."""

    def __init__(self, sim: Simulator, phys: PhysicalMemory, name: str = "kernel"):
        self.sim = sim
        self.phys = phys
        self.name = name
        self.kmalloc = KernelAllocator(phys)
        self.kspace = AddressSpace(phys, name=f"{name}-kspace")
        self._pids = itertools.count(1)
        self.processes: dict[int, OSProcess] = {}

    def create_process(self, name: str) -> OSProcess:
        proc = OSProcess(self, next(self._pids), name)
        self.processes[proc.pid] = proc
        return proc

    def reap(self, proc: OSProcess) -> None:
        self.processes.pop(proc.pid, None)

    def find_process(self, pid: int) -> Optional[OSProcess]:
        return self.processes.get(pid)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Kernel {self.name!r} procs={len(self.processes)}>"
