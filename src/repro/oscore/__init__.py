"""Shared OS substrate: kernels, processes, sysfs."""

from .kernel import Kernel, OSProcess
from .sysfs import Sysfs, SysfsError

__all__ = ["Kernel", "OSProcess", "Sysfs", "SysfsError"]
