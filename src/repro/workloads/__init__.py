"""Workloads: the paper's microbenchmarks, dgemm, and offload kernels."""

from .dgemm import (
    DGEMM_BINARY,
    MKL_EFFICIENCY,
    VERIFY_MAX_N,
    dgemm_flops,
    input_bytes,
    problem_size_for_input_bytes,
)
from .microbench import (
    ClientContext,
    rma_read_throughput,
    run_measurement,
    sendrecv_latency,
)
from .offload import (
    OFFLOAD_FUNCTIONS,
    lookup_offload_function,
    register_offload_function,
)
from .stream import STREAM_BINARY, STREAM_EFFICIENCY, stream_triad_time

__all__ = [
    "ClientContext",
    "DGEMM_BINARY",
    "MKL_EFFICIENCY",
    "OFFLOAD_FUNCTIONS",
    "VERIFY_MAX_N",
    "dgemm_flops",
    "input_bytes",
    "lookup_offload_function",
    "problem_size_for_input_bytes",
    "register_offload_function",
    "rma_read_throughput",
    "run_measurement",
    "sendrecv_latency",
    "STREAM_BINARY",
    "STREAM_EFFICIENCY",
    "stream_triad_time",
]
