"""The dgemm workload: Intel's cblas_dgemm sample on the card (§IV-C).

Two halves:

* a **performance model** — MKL dgemm on Knights Corner runs at a
  workload efficiency of ~80 % of whatever the thread placement achieves
  (:func:`repro.uos.placement_throughput`), so the card-side compute time
  is ``2*m*n*k / (placement * MKL_EFFICIENCY)``; and
* a **numerical kernel** — for small problems the matrices are actually
  materialized in GDDR and multiplied with numpy, so the launch path is
  verified to produce *correct* results, not just plausible timings.

The ``dgemm`` MIC binary registered here is what ``micnativeloadex``
launches in the Figs 6-8 experiments.
"""

from __future__ import annotations

import numpy as np

from ..mem import page_align_up
from ..mpss.binaries import MB, MICBinary, SharedLibrary, register_binary

__all__ = [
    "MKL_EFFICIENCY",
    "VERIFY_MAX_N",
    "dgemm_flops",
    "input_bytes",
    "problem_size_for_input_bytes",
    "DGEMM_BINARY",
]

#: fraction of placement throughput MKL dgemm sustains on KNC.
MKL_EFFICIENCY = 0.80

#: problems up to this N are numerically verified on the simulated card.
VERIFY_MAX_N = 256


def dgemm_flops(m: int, n: int, k: int) -> float:
    """Multiply-add count of C = alpha*A@B + beta*C."""
    return 2.0 * m * n * k


def input_bytes(n: int) -> int:
    """Total size of the two square input arrays (the Figs 6-8 x-axis)."""
    return 2 * n * n * 8


def problem_size_for_input_bytes(nbytes: int) -> int:
    """Inverse of :func:`input_bytes` (rounded down)."""
    return int((nbytes / 16) ** 0.5)


def _dgemm_entry(uos, proc, argv, env):
    """Entry point of the ``dgemm`` MIC executable.

    argv: ``[N, threads]`` (strings, like a real argv).  Returns the exit
    record: status, the modelled compute seconds, and — for small N — a
    checksum of the numerically computed C for verification.
    """
    n = int(argv[0]) if argv else 1024
    threads = int(argv[1]) if len(argv) > 1 else uos.device.sku.usable_cores
    flops = dgemm_flops(n, n, n)
    t0 = uos.sim.now
    job = yield from uos.run_compute(
        flops, threads=threads, efficiency=MKL_EFFICIENCY, name=f"dgemm-n{n}"
    )
    compute_time = uos.sim.now - t0
    record = {
        "status": 0,
        "n": n,
        "threads": threads,
        "flops": flops,
        "compute_time": compute_time,
    }
    if n <= VERIFY_MAX_N:
        # materialize A, B in GDDR, multiply for real, write C back
        nbytes = n * n * 8
        a_ext = uos.phys.alloc(page_align_up(nbytes), label="dgemm-A")
        b_ext = uos.phys.alloc(page_align_up(nbytes), label="dgemm-B")
        c_ext = uos.phys.alloc(page_align_up(nbytes), label="dgemm-C")
        try:
            rng = np.random.default_rng(n)
            a = rng.standard_normal((n, n))
            b = rng.standard_normal((n, n))
            a_ext.write(a.tobytes())
            b_ext.write(b.tobytes())
            a_back = np.frombuffer(a_ext.read(0, nbytes).tobytes(), dtype=np.float64).reshape(n, n)
            b_back = np.frombuffer(b_ext.read(0, nbytes).tobytes(), dtype=np.float64).reshape(n, n)
            c = a_back @ b_back
            c_ext.write(c.tobytes())
            record["c_checksum"] = float(np.abs(c).sum())
            record["c_expected"] = float(np.abs(a @ b).sum())
        finally:
            a_ext.free()
            b_ext.free()
            c_ext.free()
    return record


#: the dgemm sample: a small executable plus the MKL/OpenMP runtime it
#: drags across the PCIe bus at every launch — the "sizable binaries
#: (libraries/executables)" of §IV-C.
DGEMM_BINARY = register_binary(
    MICBinary(
        name="dgemm",
        size=1 * MB,
        entry=_dgemm_entry,
        deps=(
            SharedLibrary("libmkl_core.so", 60 * MB),
            SharedLibrary("libmkl_intel_lp64.so", 30 * MB),
            SharedLibrary("libmkl_thread.so", 24 * MB),
            SharedLibrary("libiomp5.so", 2 * MB),
            SharedLibrary("libc.so.6", 2 * MB),
        ),
    )
)
