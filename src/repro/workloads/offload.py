"""Offload-mode kernels invoked through COI ``run_function``.

The paper evaluates native mode only but vPHI "supports all three modes,
since all of them utilize SCIF as the transport layer" (§II-A).  These
kernels + :mod:`repro.coi` demonstrate offload mode working over vPHI.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .dgemm import MKL_EFFICIENCY, dgemm_flops

__all__ = ["register_offload_function", "lookup_offload_function", "OFFLOAD_FUNCTIONS"]

OFFLOAD_FUNCTIONS: dict[str, Callable] = {}


def register_offload_function(name: str):
    def deco(fn: Callable) -> Callable:
        OFFLOAD_FUNCTIONS[name] = fn
        return fn

    return deco


def lookup_offload_function(name: str) -> Optional[Callable]:
    return OFFLOAD_FUNCTIONS.get(name)


@register_offload_function("vector_scale")
def vector_scale(uos, buffers, args):
    """y = alpha * x, elementwise over one float64 COI buffer, in place."""
    (buf,) = buffers
    alpha = float(args.get("alpha", 2.0))
    n = args["n"]
    flops = float(n)
    yield from uos.run_compute(flops, threads=args.get("threads", 56),
                               efficiency=0.3, name="vector_scale")
    x = np.frombuffer(buf.read(0, n * 8).tobytes(), dtype=np.float64)
    buf.write((alpha * x).tobytes())
    return {"n": n, "alpha": alpha}


@register_offload_function("dgemm_offload")
def dgemm_offload(uos, buffers, args):
    """C = A @ B over three float64 COI buffers (row-major square)."""
    a_buf, b_buf, c_buf = buffers
    n = args["n"]
    threads = args.get("threads", 224)
    yield from uos.run_compute(
        dgemm_flops(n, n, n), threads=threads, efficiency=MKL_EFFICIENCY,
        name=f"offload-dgemm-{n}",
    )
    a = np.frombuffer(a_buf.read(0, n * n * 8).tobytes(), dtype=np.float64).reshape(n, n)
    b = np.frombuffer(b_buf.read(0, n * n * 8).tobytes(), dtype=np.float64).reshape(n, n)
    c = a @ b
    c_buf.write(c.tobytes())
    return {"n": n, "threads": threads, "checksum": float(np.abs(c).sum())}


@register_offload_function("reduce_sum")
def reduce_sum(uos, buffers, args):
    """Sum-reduce one float64 buffer; returns the scalar."""
    (buf,) = buffers
    n = args["n"]
    yield from uos.run_compute(float(n), threads=args.get("threads", 56),
                               efficiency=0.25, name="reduce_sum")
    x = np.frombuffer(buf.read(0, n * 8).tobytes(), dtype=np.float64)
    return {"sum": float(x.sum())}
