"""STREAM triad on the card: the memory-bandwidth-bound counterweight to
dgemm's compute-bound profile.

The paper's §IV-C argument — launch overhead amortizes when the card does
real work — holds for bandwidth-bound kernels too, but with a different
denominator: STREAM runtime scales with *bytes*, not flops.  The
``stream`` MIC binary registered here lets the dgemm experiments be
re-run against a kernel with the opposite roofline corner.
"""

from __future__ import annotations

import numpy as np

from ..mem import page_align_up
from ..mpss.binaries import MB, MICBinary, SharedLibrary, register_binary

__all__ = ["STREAM_BINARY", "stream_triad_time", "STREAM_EFFICIENCY"]

#: fraction of the GDDR peak STREAM triad sustains on KNC (~170/240 GB/s
#: on a 3120P with ECC on).
STREAM_EFFICIENCY = 0.70

#: triad moves 3 arrays per iteration: a[i] = b[i] + q*c[i] (2 reads + 1 write)
_BYTES_PER_ELEMENT = 3 * 8
#: and performs 2 flops per element
_FLOPS_PER_ELEMENT = 2.0


def stream_triad_time(n_elements: int, iterations: int, sku) -> float:
    """Modelled triad runtime: bandwidth-bound on GDDR."""
    bytes_moved = n_elements * _BYTES_PER_ELEMENT * iterations
    return bytes_moved / (sku.gddr_bandwidth * STREAM_EFFICIENCY)


def _stream_entry(uos, proc, argv, env):
    """argv: [n_elements, iterations, threads]."""
    n = int(argv[0]) if argv else 1_000_000
    iterations = int(argv[1]) if len(argv) > 1 else 10
    threads = int(argv[2]) if len(argv) > 2 else uos.device.sku.usable_cores
    sku = uos.device.sku
    # convert the bandwidth-bound time into an equivalent flops charge so
    # the kernel flows through the same scheduler as everything else
    target_time = stream_triad_time(n, iterations, sku)
    from ..uos.scheduler import placement_throughput

    rate = placement_throughput(threads, sku)
    flops_equiv = target_time * rate
    t0 = uos.sim.now
    yield from uos.run_compute(flops_equiv, threads=threads, efficiency=1.0,
                               name=f"stream-n{n}")
    compute_time = uos.sim.now - t0
    record = {
        "status": 0,
        "n": n,
        "iterations": iterations,
        "threads": threads,
        "compute_time": compute_time,
        "triad_gbps": n * _BYTES_PER_ELEMENT * iterations / compute_time / 1e9,
    }
    if n <= 65536:
        # numerically verify one triad pass in GDDR
        nbytes = n * 8
        exts = [uos.phys.alloc(page_align_up(nbytes), label=f"stream-{k}")
                for k in "abc"]
        try:
            rng = np.random.default_rng(n)
            b = rng.standard_normal(n)
            c = rng.standard_normal(n)
            q = 3.0
            exts[1].write(b.tobytes())
            exts[2].write(c.tobytes())
            b_back = np.frombuffer(exts[1].read(0, nbytes).tobytes(), dtype=np.float64)
            c_back = np.frombuffer(exts[2].read(0, nbytes).tobytes(), dtype=np.float64)
            a = b_back + q * c_back
            exts[0].write(a.tobytes())
            record["a_checksum"] = float(np.abs(a).sum())
            record["a_expected"] = float(np.abs(b + q * c).sum())
        finally:
            for e in exts:
                e.free()
    return record


STREAM_BINARY = register_binary(
    MICBinary(
        name="stream",
        size=256 * 1024,
        entry=_stream_entry,
        deps=(
            SharedLibrary("libiomp5.so", 2 * MB),
            SharedLibrary("libc.so.6", 2 * MB),
        ),
    )
)
