"""The §IV-B microbenchmarks: send-recv latency and remote-read throughput.

These are the exact workloads behind Fig 4 and Fig 5, written once
against the SCIF API and run either natively (host client) or through
vPHI (guest client) via a :class:`ClientContext`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "ClientContext",
    "sendrecv_latency",
    "rma_read_throughput",
    "run_measurement",
]

_ports = itertools.count(20_000)


@dataclass
class ClientContext:
    """Where a benchmark client runs: which libscif, whose address space,
    and how its sim process is spawned (guest processes live in the VM's
    freezable domain)."""

    lib: object
    process: object
    spawn: Callable
    label: str

    @classmethod
    def native(cls, machine, name: str = "native-client") -> "ClientContext":
        proc = machine.host_process(name)
        return cls(machine.scif(proc), proc, machine.sim.spawn, "native")

    @classmethod
    def guest(cls, vm, name: str = "guest-client") -> "ClientContext":
        proc = vm.guest_process(name)
        return cls(vm.vphi.libscif(proc), proc, vm.spawn_guest, "vphi")


def run_measurement(machine, gen, spawn=None):
    """Spawn a measurement process, run the sim, return its value."""
    proc = (spawn or machine.sim.spawn)(gen)
    machine.run()
    return proc.value


# ----------------------------------------------------------------------
# Fig 4 workload
# ----------------------------------------------------------------------
def sendrecv_latency(machine, ctx: ClientContext, sizes: Sequence[int],
                     card: int = 0) -> list[tuple[int, float]]:
    """Measure scif_send completion latency per message size.

    "a SCIF server is launched on the accelerator, listens for connection
    requests and when a connection is established, it blocks on
    scif_recv(), waiting to serve data to the respective client" (§IV-B).
    """
    port = next(_ports)
    card_node = machine.card_node_id(card)
    slib = machine.scif(machine.card_process(f"latency-server-{port}", card=card))
    sizes = list(sizes)

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, port)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        for size in sizes:
            yield from slib.recv(conn, size)

    def client():
        ep = yield from ctx.lib.open()
        yield from ctx.lib.connect(ep, (card_node, port))
        results = []
        for size in sizes:
            payload = np.full(size, 0xA5, dtype=np.uint8)
            t0 = machine.sim.now
            yield from ctx.lib.send(ep, payload)
            results.append((size, machine.sim.now - t0))
        yield from ctx.lib.close(ep)
        return results

    machine.sim.spawn(server())
    return run_measurement(machine, client(), spawn=ctx.spawn)


# ----------------------------------------------------------------------
# Fig 5 workload
# ----------------------------------------------------------------------
def rma_read_throughput(machine, ctx: ClientContext, sizes: Sequence[int],
                        card: int = 0, verify: bool = True) -> list[tuple[int, float]]:
    """Measure scif_vreadfrom throughput per transfer size.

    "we launch an executable on Xeon Phi, that again listens for incoming
    connections and then pins a device memory area based on the requested
    size using scif_register() ... the benchmark requests a connection
    and afterwards it performs a remote read from the accelerator" (§IV-B).
    """
    port = next(_ports)
    card_node = machine.card_node_id(card)
    sproc = machine.card_process(f"rma-server-{port}", card=card)
    slib = machine.scif(sproc)
    sizes = list(sizes)
    max_size = max(sizes)
    ready = machine.sim.event()

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, port)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        vma = sproc.address_space.mmap(max_size, populate=True, name="rma-window")
        sproc.address_space.write(
            vma.start, np.full(max_size, 0x5F, dtype=np.uint8)
        )
        roff = yield from slib.register(conn, vma.start, max_size)
        ready.succeed(roff)
        yield from slib.recv(conn, 1)  # hold the window until the client ends

    def client():
        ep = yield from ctx.lib.open()
        yield from ctx.lib.connect(ep, (card_node, port))
        roff = yield ready
        vma = ctx.process.address_space.mmap(max_size, populate=True, name="rma-dst")
        results = []
        for size in sizes:
            t0 = machine.sim.now
            yield from ctx.lib.vreadfrom(ep, vma.start, size, roff)
            dt = machine.sim.now - t0
            if verify:
                tail = ctx.process.address_space.read(vma.start + size - min(size, 4096),
                                                      min(size, 4096))
                assert (tail == 0x5F).all(), "RMA payload corrupted"
            results.append((size, size / dt))
        yield from ctx.lib.send(ep, b"x")
        yield from ctx.lib.close(ep)
        return results

    machine.sim.spawn(server())
    return run_measurement(machine, client(), spawn=ctx.spawn)
