"""COI: the Coprocessor Offload Infrastructure layered on SCIF (§II-B)."""

from .client import COIBufferHandle, COIConnection, COIError, COIProcessHandle
from .daemon import CoiDaemon, start_coi_daemon
from .offload_runtime import In, InOut, OffloadRuntime, Out
from .pipeline import PipelineManager, RunRecord
from .protocol import COI_DAEMON_PORT

__all__ = [
    "COIBufferHandle",
    "COIConnection",
    "COIError",
    "COIProcessHandle",
    "COI_DAEMON_PORT",
    "CoiDaemon",
    "In",
    "InOut",
    "OffloadRuntime",
    "Out",
    "PipelineManager",
    "RunRecord",
    "start_coi_daemon",
]
