"""coi_daemon: the card-side service receiving launch/offload requests.

§II-B: "Xeon Phi device receives the respective requests from the host
through a COI daemon that is executed after uOS has booted."  The daemon
listens on a well-known SCIF port, accepts one connection per client, and
services:

* ``process_create`` — receive the executable + dependencies (their bytes
  cross the wire), verify the checksum, "exec" the registered entry point
  as a card process;
* ``process_wait`` — block until the process exits, return its exit record;
* ``buffer_create`` / ``buffer_write`` / ``buffer_read`` — GDDR-resident
  COI buffers (used by offload mode);
* ``run_function`` — offload-mode RPC into a created process.
"""

from __future__ import annotations

import itertools
import zlib
from typing import Optional

from ..mpss.binaries import lookup_binary
from ..scif import NativeScif, ScifError
from .protocol import COI_DAEMON_PORT, recv_msg, recv_raw, send_msg

__all__ = ["CoiDaemon", "start_coi_daemon"]


class _CardProcess:
    """Daemon-side record of one launched MIC process."""

    def __init__(self, pid: int, name: str):
        self.pid = pid
        self.name = name
        self.exit_record: Optional[dict] = None
        self.done_event = None  # sim Event, set at creation
        self.functions: dict[str, object] = {}


class CoiDaemon:
    """The daemon instance for one card."""

    def __init__(self, machine, card: int = 0, port: int = COI_DAEMON_PORT):
        self.machine = machine
        self.sim = machine.sim
        self.card = card
        self.port = port
        self.uos = machine.uos(card)
        self.os_process = machine.card_process(f"coi_daemon-mic{card}", card=card)
        self.lib: NativeScif = machine.scif(self.os_process)
        self._pids = itertools.count(1)
        self.processes: dict[int, _CardProcess] = {}
        self.buffers: dict[int, tuple] = {}  # id -> (extent,)
        self._buffer_ids = itertools.count(1)
        self.launches = 0
        #: per-connection pipeline managers (keyed by endpoint id)
        self._pipeline_mgrs: dict[int, "PipelineManager"] = {}
        #: run_id -> RunRecord across all pipelines
        self.runs: dict[int, object] = {}

    # ------------------------------------------------------------------
    def run(self):
        """The daemon main loop (spawn as a sim process)."""
        ep = yield from self.lib.open()
        yield from self.lib.bind(ep, self.port)
        yield from self.lib.listen(ep, backlog=32)
        while True:
            try:
                conn, peer = yield from self.lib.accept(ep)
            except ScifError:
                return
            self.sim.spawn(self._serve(conn), name=f"coi-conn-{peer}")

    def _serve(self, conn):
        lib = self.lib
        try:
            while True:
                msg = yield from recv_msg(lib, conn)
                handler = getattr(self, f"_op_{msg['type']}", None)
                if handler is None:
                    yield from send_msg(lib, conn, {"ok": False,
                                                    "error": f"bad op {msg['type']}"})
                    continue
                reply = yield from handler(msg, conn)
                yield from send_msg(lib, conn, reply)
        except ScifError:
            return  # client went away

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def _op_process_create(self, msg, conn):
        """Receive binary + deps, verify, exec the entry point."""
        name = msg["binary"]
        total = msg["transfer_bytes"]
        # the executable's own bytes arrive first (checksummed)...
        content = yield from recv_raw(self.lib, conn, msg["binary_size"])
        # ...then the dependency payload (modelled as one opaque blob)
        dep_bytes = total - msg["binary_size"]
        if dep_bytes > 0:
            yield from recv_raw(self.lib, conn, dep_bytes)
        binary = lookup_binary(name)
        if binary is None:
            return {"ok": False, "error": f"no such MIC binary {name!r}"}
        if zlib.crc32(content.tobytes()) != binary.checksum():
            return {"ok": False, "error": "binary checksum mismatch after transfer"}
        pid = next(self._pids)
        record = _CardProcess(pid, name)
        record.done_event = self.sim.event(name=f"coi-proc-{pid}")
        self.processes[pid] = record
        self.launches += 1
        proc = self.uos.create_process(f"{name}[{pid}]")

        def runner():
            gen = binary.entry(self.uos, proc, msg.get("argv", []), msg.get("env", {}))
            exit_record = yield from gen
            record.exit_record = exit_record if isinstance(exit_record, dict) else {
                "status": exit_record
            }
            proc.exit()
            record.done_event.succeed(record.exit_record)

        self.sim.spawn(runner(), name=f"mic-exec-{name}-{pid}")
        return {"ok": True, "pid": pid}

    def _op_process_wait(self, msg, conn):
        record = self.processes.get(msg["pid"])
        if record is None:
            return {"ok": False, "error": f"no pid {msg['pid']}"}
        if record.exit_record is None:
            yield record.done_event
        return {"ok": True, "exit": record.exit_record}

    def _op_buffer_create(self, msg, conn):
        nbytes = msg["nbytes"]
        ext = self.uos.phys.alloc(nbytes, label="coi-buffer")
        buf_id = next(self._buffer_ids)
        self.buffers[buf_id] = (ext,)
        yield self.sim.timeout(0)
        return {"ok": True, "buffer": buf_id}

    def _op_buffer_write(self, msg, conn):
        (ext,) = self.buffers[msg["buffer"]]
        data = yield from recv_raw(self.lib, conn, msg["nbytes"])
        ext.write(data, off=msg.get("offset", 0))
        return {"ok": True}

    def _op_buffer_read(self, msg, conn):
        (ext,) = self.buffers[msg["buffer"]]
        data = ext.read(msg.get("offset", 0), msg["nbytes"])
        yield from self.lib.send(conn, data)
        return {"ok": True}

    def _op_buffer_destroy(self, msg, conn):
        (ext,) = self.buffers.pop(msg["buffer"])
        ext.free()
        yield self.sim.timeout(0)
        return {"ok": True}

    # -- pipelines (ordered async queues with buffer-hazard tracking) ----
    def _mgr(self, conn) -> "PipelineManager":
        from .pipeline import PipelineManager

        mgr = self._pipeline_mgrs.get(conn.id)
        if mgr is None:
            mgr = self._pipeline_mgrs[conn.id] = PipelineManager(
                self.sim, self.uos, self.buffers
            )
        return mgr

    def _op_pipeline_create(self, msg, conn):
        yield self.sim.timeout(0)
        return {"ok": True, "pipeline": self._mgr(conn).create_pipeline()}

    def _op_pipeline_destroy(self, msg, conn):
        yield self.sim.timeout(0)
        self._mgr(conn).destroy_pipeline(msg["pipeline"])
        return {"ok": True}

    def _op_pipeline_enqueue(self, msg, conn):
        """Asynchronous: replies with the run id immediately; the kernel
        executes in pipeline order subject to buffer hazards."""
        yield self.sim.timeout(0)
        try:
            record = self._mgr(conn).enqueue(
                msg["pipeline"], msg["function"], msg.get("buffers", ()),
                msg.get("writes", ()), msg.get("args", {}),
            )
        except KeyError as err:
            return {"ok": False, "error": str(err)}
        self.runs[record.run_id] = record
        return {"ok": True, "run": record.run_id}

    def _op_run_wait(self, msg, conn):
        record = self.runs.get(msg["run"])
        if record is None:
            yield self.sim.timeout(0)
            return {"ok": False, "error": f"no run {msg['run']}"}
        if not record.done.fired:
            yield record.done
        return {"ok": True, **record.result}

    def _op_run_function(self, msg, conn):
        """Offload-mode RPC: run a named kernel against COI buffers."""
        from ..workloads.offload import lookup_offload_function

        fn = lookup_offload_function(msg["function"])
        if fn is None:
            return {"ok": False, "error": f"no offload function {msg['function']!r}"}
        buffers = [self.buffers[b][0] for b in msg.get("buffers", ())]
        result = yield from fn(self.uos, buffers, msg.get("args", {}))
        return {"ok": True, "result": result}


def start_coi_daemon(machine, card: int = 0, port: int = COI_DAEMON_PORT) -> CoiDaemon:
    """Create and spawn the daemon for one card; returns the daemon."""
    daemon = CoiDaemon(machine, card=card, port=port)
    machine.sim.spawn(daemon.run(), name=f"coi_daemon-mic{card}")
    machine.uos(card).coi_daemon = daemon.os_process
    return daemon
