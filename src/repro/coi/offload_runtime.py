"""A `#pragma offload`-style runtime on top of COI.

§II-B: COI exists so "runtime frameworks" can be built on it — the Intel
compiler's offload pragmas are the canonical client.  This module is
that kind of client: declare which arrays go *in*, *out* or *inout*, and
the runtime handles COI buffers, transfers, pipeline enqueue and result
marshalling.  It works identically from the host and from inside a VM
(the ClientContext decides which libscif it rides).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from .client import COIBufferHandle, COIConnection, COIError

__all__ = ["In", "Out", "InOut", "OffloadRuntime"]


@dataclass(frozen=True)
class In:
    """Array shipped to the card before the kernel runs."""

    array: np.ndarray


@dataclass(frozen=True)
class Out:
    """Array allocated on the card and fetched after the kernel."""

    shape: tuple
    dtype: type = np.float64


@dataclass(frozen=True)
class InOut:
    """Array shipped in and fetched back."""

    array: np.ndarray


Spec = Union[In, Out, InOut]


class OffloadRuntime:
    """One offload context: a COI connection + one pipeline."""

    def __init__(self, ctx, machine, card: int = 0):
        self.ctx = ctx
        self.machine = machine
        self.card = card
        self.conn: Optional[COIConnection] = None
        self.pipeline: Optional[int] = None
        self.offloads = 0

    # ------------------------------------------------------------------
    def open(self):
        """Process: connect to the card's coi_daemon and set up."""
        self.conn = COIConnection(self.ctx.lib, self.machine.card_node_id(self.card))
        yield from self.conn.connect()
        self.pipeline = yield from self.conn.pipeline_create()
        return self

    def close(self):
        if self.conn is not None:
            yield from self.conn.pipeline_destroy(self.pipeline)
            yield from self.conn.close()
            self.conn = None

    # ------------------------------------------------------------------
    def run(self, function: str, arrays: Sequence[Spec], args: Optional[dict] = None):
        """Process: one synchronous offload.

        Returns ``(kernel_result, outputs)`` where ``outputs`` is the
        list of fetched arrays for every Out/InOut spec, in order.
        """
        if self.conn is None:
            raise COIError("runtime not opened")
        self.offloads += 1
        buffers: list[COIBufferHandle] = []
        writes: list[COIBufferHandle] = []
        fetch: list[tuple[COIBufferHandle, tuple, type]] = []
        for spec in arrays:
            if isinstance(spec, (In, InOut)):
                data = np.ascontiguousarray(spec.array)
                buf = yield from self.conn.buffer_create(data.nbytes)
                yield from buf.write(data.tobytes())
                buffers.append(buf)
                if isinstance(spec, InOut):
                    writes.append(buf)
                    fetch.append((buf, data.shape, data.dtype))
            elif isinstance(spec, Out):
                nbytes = int(np.prod(spec.shape)) * np.dtype(spec.dtype).itemsize
                buf = yield from self.conn.buffer_create(nbytes)
                buffers.append(buf)
                writes.append(buf)
                fetch.append((buf, tuple(spec.shape), spec.dtype))
            else:
                raise COIError(f"bad array spec {spec!r}")
        run_id = yield from self.conn.pipeline_enqueue(
            self.pipeline, function, buffers=buffers, writes=writes,
            args=dict(args or {}),
        )
        result = yield from self.conn.run_wait(run_id)
        outputs = []
        for buf, shape, dtype in fetch:
            raw = yield from buf.read()
            outputs.append(
                np.frombuffer(raw.tobytes(), dtype=dtype).reshape(shape)
            )
        for buf in buffers:
            yield from buf.destroy()
        return result, outputs
