"""COI wire protocol: length-framed pickled records over SCIF messaging.

COI "uses SCIF as the transport layer and abstracts the low-level
details" (§II-B).  Every message is an 8-byte big-endian length followed
by a pickled dict; bulk payloads (binaries, buffer data) follow as raw
bytes so they ride SCIF's data path, not the control path.
"""

from __future__ import annotations

import pickle
from typing import Any

import numpy as np

__all__ = [
    "COI_DAEMON_PORT",
    "frame",
    "send_msg",
    "recv_msg",
    "send_raw",
    "recv_raw",
]

#: the well-known SCIF port coi_daemon listens on (mirrors MPSS's choice
#: of a reserved low port).
COI_DAEMON_PORT = 300


def frame(obj: Any) -> bytes:
    body = pickle.dumps(obj)
    return len(body).to_bytes(8, "big") + body


def send_msg(lib, ep, obj: Any):
    """Process: send one framed control record."""
    n = yield from lib.send(ep, frame(obj))
    return n


def recv_msg(lib, ep):
    """Process: receive one framed control record."""
    hdr = yield from lib.recv(ep, 8)
    length = int.from_bytes(hdr.tobytes(), "big")
    body = yield from lib.recv(ep, length)
    return pickle.loads(body.tobytes())


def send_raw(lib, ep, data):
    """Process: send a bulk payload (already sized by a prior record)."""
    n = yield from lib.send(ep, data)
    return n


def recv_raw(lib, ep, nbytes: int) -> np.ndarray:
    """Process: receive exactly ``nbytes`` of bulk payload."""
    data = yield from lib.recv(ep, nbytes)
    return data
