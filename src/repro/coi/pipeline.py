"""COI pipelines: ordered asynchronous kernel queues with buffer hazards.

Real COI exposes ``COIPipeline`` — per-process command queues.  Run-
function calls enqueue; calls on one pipeline execute in order, while
distinct pipelines run concurrently *except* when they touch the same
``COIBuffer``: the runtime tracks buffer ownership and serializes
conflicting accesses (write-after-write / read-after-write hazards).

This is the machinery an offload runtime (e.g. the compiler's ``#pragma
offload``) builds on; implementing it makes the offload-mode examples
representative rather than toy RPC.
"""

from __future__ import annotations

import itertools
from typing import Sequence

from ..sim import Channel, ChannelClosed, Event, Simulator

__all__ = ["PipelineManager", "RunRecord"]


class RunRecord:
    """One enqueued run-function: its buffers, completion event, result."""

    __slots__ = ("run_id", "function", "buffer_ids", "writes", "done", "result")

    def __init__(self, run_id: int, function: str, buffer_ids: Sequence[int],
                 writes: Sequence[int], done: Event):
        self.run_id = run_id
        self.function = function
        self.buffer_ids = list(buffer_ids)
        #: subset of buffer_ids the kernel writes (hazard tracking)
        self.writes = set(writes)
        self.done = done
        self.result = None


class PipelineManager:
    """Card-side execution of pipelines for one COI process/connection."""

    def __init__(self, sim: Simulator, uos, buffers: dict):
        self.sim = sim
        self.uos = uos
        #: shared with the daemon: buffer_id -> (PhysExtent,)
        self.buffers = buffers
        self._run_ids = itertools.count(1)
        self._queues: dict[int, Channel] = {}
        self._pipeline_ids = itertools.count(1)
        #: buffer_id -> event of the last enqueued *write* touching it
        self._last_writer: dict[int, Event] = {}
        #: buffer_id -> events of reads since the last write
        self._readers_since_write: dict[int, list[Event]] = {}
        self.completed: list[RunRecord] = []

    # ------------------------------------------------------------------
    def create_pipeline(self) -> int:
        pid = next(self._pipeline_ids)
        queue = Channel(self.sim, name=f"coi-pipe{pid}")
        self._queues[pid] = queue
        self.sim.spawn(self._pipeline_loop(pid, queue), name=f"coi-pipe{pid}")
        return pid

    def destroy_pipeline(self, pid: int) -> None:
        queue = self._queues.pop(pid, None)
        if queue is not None:
            queue.close()

    def enqueue(self, pid: int, function: str, buffer_ids: Sequence[int],
                writes: Sequence[int], args: dict) -> RunRecord:
        """Queue one run-function; returns its record (``done`` fires with
        the kernel's result)."""
        if pid not in self._queues:
            raise KeyError(f"no pipeline {pid}")
        record = RunRecord(next(self._run_ids), function, buffer_ids, writes,
                           self.sim.event(f"coi-run"))
        # hazard edges: this run must wait for the last writer of every
        # buffer it touches, and a write additionally waits for readers.
        deps: list[Event] = []
        for b in record.buffer_ids:
            w = self._last_writer.get(b)
            if w is not None and not w.fired:
                deps.append(w)
        for b in record.writes:
            for r in self._readers_since_write.get(b, ()):
                if not r.fired:
                    deps.append(r)
        # update hazard state *at enqueue time* (program order)
        for b in record.writes:
            self._last_writer[b] = record.done
            self._readers_since_write[b] = []
        for b in set(record.buffer_ids) - record.writes:
            self._readers_since_write.setdefault(b, []).append(record.done)
        self._queues[pid].try_put((record, deps, dict(args)))
        return record

    # ------------------------------------------------------------------
    def _pipeline_loop(self, pid: int, queue: Channel):
        while True:
            try:
                record, deps, args = yield queue.get()
            except ChannelClosed:
                return
            if deps:
                yield self.sim.all_of(deps)
            result = yield from self._execute(record, args)
            record.result = result
            self.completed.append(record)
            record.done.succeed(result)

    def _execute(self, record: RunRecord, args: dict):
        from ..workloads.offload import lookup_offload_function

        fn = lookup_offload_function(record.function)
        if fn is None:
            return {"ok": False, "error": f"no offload function {record.function!r}"}
        extents = [self.buffers[b][0] for b in record.buffer_ids]
        result = yield from fn(self.uos, extents, args)
        return {"ok": True, "result": result}
