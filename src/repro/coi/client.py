"""COI client library: process/buffer/function handles over SCIF.

Works against either SCIF implementation (native or vPHI guest shim), so
the same offload client code runs on the host or inside a VM — COI
"remains compatible with higher-level frameworks" because vPHI
virtualizes the layer *below* it (§II-B).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .protocol import COI_DAEMON_PORT, recv_msg, send_msg

__all__ = ["COIError", "COIConnection", "COIProcessHandle", "COIBufferHandle"]


class COIError(Exception):
    """Daemon-reported failure."""


class COIProcessHandle:
    """Client-side handle to a launched card process."""

    __slots__ = ("conn", "pid")

    def __init__(self, conn: "COIConnection", pid: int):
        self.conn = conn
        self.pid = pid

    def wait(self):
        """Process: block until exit; returns the exit record dict."""
        reply = yield from self.conn.call({"type": "process_wait", "pid": self.pid})
        return reply["exit"]


class COIBufferHandle:
    """Client-side handle to a GDDR-resident COI buffer."""

    __slots__ = ("conn", "buffer_id", "nbytes")

    def __init__(self, conn: "COIConnection", buffer_id: int, nbytes: int):
        self.conn = conn
        self.buffer_id = buffer_id
        self.nbytes = nbytes

    def write(self, data, offset: int = 0):
        """Process: push bytes into the card buffer."""
        data = np.asarray(bytearray(data), dtype=np.uint8) if isinstance(
            data, (bytes, bytearray)
        ) else data
        reply = yield from self.conn.call(
            {"type": "buffer_write", "buffer": self.buffer_id,
             "nbytes": len(data), "offset": offset},
            payload=data,
        )
        return reply

    def read(self, nbytes: Optional[int] = None, offset: int = 0):
        """Process: pull bytes out of the card buffer."""
        nbytes = self.nbytes if nbytes is None else nbytes
        lib, ep = self.conn.lib, self.conn.ep
        yield from send_msg(lib, ep, {"type": "buffer_read", "buffer": self.buffer_id,
                                      "nbytes": nbytes, "offset": offset})
        data = yield from lib.recv(ep, nbytes)
        reply = yield from recv_msg(lib, ep)
        if not reply.get("ok"):
            raise COIError(reply.get("error"))
        return data

    def destroy(self):
        yield from self.conn.call({"type": "buffer_destroy", "buffer": self.buffer_id})


class COIConnection:
    """One client connection to a card's coi_daemon."""

    def __init__(self, lib, card_node: int, port: int = COI_DAEMON_PORT):
        self.lib = lib
        self.card_node = card_node
        self.port = port
        self.ep = None

    # ------------------------------------------------------------------
    def connect(self):
        """Process: open the SCIF connection to the daemon."""
        self.ep = yield from self.lib.open()
        yield from self.lib.connect(self.ep, (self.card_node, self.port))
        return self

    def close(self):
        if self.ep is not None:
            yield from self.lib.close(self.ep)
            self.ep = None

    def call(self, msg: dict, payload=None):
        """Process: one request/optional-payload/response round trip."""
        yield from send_msg(self.lib, self.ep, msg)
        if payload is not None and len(payload):
            yield from self.lib.send(self.ep, payload)
        reply = yield from recv_msg(self.lib, self.ep)
        if not reply.get("ok"):
            raise COIError(reply.get("error"))
        return reply

    # ------------------------------------------------------------------
    def process_create(self, binary, argv: Sequence[str] = (), env: Optional[dict] = None):
        """Process: launch a MIC binary (its bytes cross the wire here)."""
        lib, ep = self.lib, self.ep
        yield from send_msg(lib, ep, {
            "type": "process_create",
            "binary": binary.name,
            "binary_size": binary.size,
            "transfer_bytes": binary.total_transfer_bytes,
            "argv": list(argv),
            "env": dict(env or {}),
        })
        # ship the executable, then the dependency blob
        yield from lib.send(ep, binary.content())
        dep_bytes = binary.total_transfer_bytes - binary.size
        if dep_bytes > 0:
            yield from lib.send(ep, np.zeros(dep_bytes, dtype=np.uint8))
        reply = yield from recv_msg(lib, ep)
        if not reply.get("ok"):
            raise COIError(reply.get("error"))
        return COIProcessHandle(self, reply["pid"])

    def buffer_create(self, nbytes: int):
        reply = yield from self.call({"type": "buffer_create", "nbytes": nbytes})
        return COIBufferHandle(self, reply["buffer"], nbytes)

    def run_function(self, function: str, buffers: Sequence[COIBufferHandle] = (),
                     args: Optional[dict] = None):
        reply = yield from self.call({
            "type": "run_function",
            "function": function,
            "buffers": [b.buffer_id for b in buffers],
            "args": dict(args or {}),
        })
        return reply["result"]

    # ------------------------------------------------------------------
    # pipelines: asynchronous, ordered, hazard-aware kernel queues
    # ------------------------------------------------------------------
    def pipeline_create(self):
        reply = yield from self.call({"type": "pipeline_create"})
        return reply["pipeline"]

    def pipeline_destroy(self, pipeline: int):
        yield from self.call({"type": "pipeline_destroy", "pipeline": pipeline})

    def pipeline_enqueue(self, pipeline: int, function: str,
                         buffers: Sequence[COIBufferHandle] = (),
                         writes: Sequence[COIBufferHandle] = (),
                         args: Optional[dict] = None):
        """Enqueue asynchronously; returns a run id immediately.  The
        kernel runs in pipeline order, serialized against other pipelines
        only where COIBuffer hazards require it."""
        reply = yield from self.call({
            "type": "pipeline_enqueue",
            "pipeline": pipeline,
            "function": function,
            "buffers": [b.buffer_id for b in buffers],
            "writes": [b.buffer_id for b in writes],
            "args": dict(args or {}),
        })
        return reply["run"]

    def run_wait(self, run: int):
        """Block until an enqueued run retires; returns its result."""
        reply = yield from self.call({"type": "run_wait", "run": run})
        return reply["result"]
