"""Power analysis: throughput-per-watt, throttle residency, tail spikes.

Three views over a run with the power model on (``power_model="knc"``):

* :func:`power_stats` — per-card energy/thermal/residency accounting
  joined with the uOS scheduler's delivered flops, yielding the
  datacenter currencies: average watts and GFLOPS per watt.
* :func:`render_power` — the human table.
* :func:`throttle_tail` — per-op latency percentiles computed from the
  PR 5 span record, with the throttled-dispatch count alongside, so a
  throttle-induced p99 spike is attributable in the same breakdown the
  span machinery already provides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..sim import Tracer

__all__ = [
    "CardPowerStats",
    "PowerReport",
    "power_stats",
    "render_power",
    "throttle_tail",
]


@dataclass
class CardPowerStats:
    """One card's power accounting over a run."""

    card: str
    sku: str
    elapsed_s: float
    energy_j: float
    flops_delivered: float
    busy_time_s: float
    throttled_time_s: float
    pstate_residency_s: list[float]
    cstate_core_seconds: dict[str, float]
    max_temp_c: float
    thermal_trips: int
    governor_ticks: int
    tdp_cap_w: float

    @property
    def avg_watts(self) -> float:
        return self.energy_j / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def gflops_per_watt(self) -> float:
        """Delivered GFLOPS per average watt — the efficiency currency."""
        if self.energy_j <= 0:
            return 0.0
        return (self.flops_delivered / 1e9) / self.energy_j

    @property
    def throttle_residency(self) -> float:
        """Fraction of the busy window spent below the requested clock."""
        if self.busy_time_s <= 0:
            return 0.0
        return min(self.throttled_time_s / self.busy_time_s, 1.0)


@dataclass
class PowerReport:
    """All cards' power stats for one machine (or cluster host)."""

    cards: list[CardPowerStats] = field(default_factory=list)

    @property
    def total_energy_j(self) -> float:
        return sum(c.energy_j for c in self.cards)


def power_stats(machine, elapsed: Optional[float] = None) -> PowerReport:
    """Collect per-card power stats from a machine with the model on.

    ``elapsed`` defaults to the simulator clock; pass a window length
    to rate a sub-interval measured by the caller.
    """
    if elapsed is None:
        elapsed = machine.sim.now
    report = PowerReport()
    for dev in machine.devices:
        power = dev.power
        if power is None:
            continue
        snap = power.stats()  # advances integrals to sim.now
        sched = dev.uos.scheduler if dev.uos is not None else None
        report.cards.append(CardPowerStats(
            card=dev.name,
            sku=dev.sku.name,
            elapsed_s=elapsed,
            energy_j=snap["energy_j"],
            flops_delivered=sched.flops_delivered if sched else 0.0,
            busy_time_s=sched.busy_time if sched else 0.0,
            throttled_time_s=snap["throttled_time_s"],
            pstate_residency_s=snap["pstate_residency_s"],
            cstate_core_seconds=snap["cstate_core_seconds"],
            max_temp_c=snap["max_temp_c"],
            thermal_trips=snap["thermal_trips"],
            governor_ticks=snap["governor_ticks"],
            tdp_cap_w=snap["tdp_cap_w"],
        ))
    return report


def render_power(report: PowerReport) -> str:
    """The per-card power table, one row per card."""
    lines = [
        f"{'card':<6} {'sku':<6} {'cap(W)':>7} {'avg(W)':>7} "
        f"{'energy(J)':>10} {'GF/W':>7} {'thr%':>6} {'maxT(C)':>8} "
        f"{'trips':>5}"
    ]
    for c in report.cards:
        lines.append(
            f"{c.card:<6} {c.sku:<6} {c.tdp_cap_w:>7.0f} {c.avg_watts:>7.1f} "
            f"{c.energy_j:>10.2f} {c.gflops_per_watt:>7.3f} "
            f"{c.throttle_residency:>6.1%} {c.max_temp_c:>8.1f} "
            f"{c.thermal_trips:>5}"
        )
        deepest = len(c.pstate_residency_s) - 1
        resid = "  ".join(
            f"P{i}={t:.4f}s" for i, t in enumerate(c.pstate_residency_s)
            if t > 0 or i in (0, deepest)
        )
        lines.append(f"       pstate residency: {resid}")
    return "\n".join(lines)


def _percentile(sorted_vals: list[float], q: float) -> float:
    """Exact nearest-rank percentile over an already-sorted list."""
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, max(0, int(q * len(sorted_vals))))
    return sorted_vals[idx]


def throttle_tail(tracer: Tracer,
                  ops: Optional[Iterable[str]] = None) -> dict[str, dict]:
    """Per-op latency percentiles from the span record, throttle-aware.

    Returns ``{op: {count, p50, p99, max}}`` from closed ok spans, plus
    a ``"_throttled_ops"`` entry carrying the backend's count of
    dispatches that ran with a frequency multiplier — the pair is what
    surfaces a throttle-induced p99 spike next to its cause.
    """
    wanted = set(ops) if ops is not None else None
    by_op: dict[str, list[float]] = {}
    for span in tracer.spans:
        if span.status != "ok":
            continue
        if wanted is not None and span.op not in wanted:
            continue
        by_op.setdefault(span.op, []).append(span.elapsed)
    out: dict[str, dict] = {}
    for op, vals in sorted(by_op.items()):
        vals.sort()
        out[op] = {
            "count": len(vals),
            "p50": _percentile(vals, 0.50),
            "p99": _percentile(vals, 0.99),
            "max": vals[-1],
        }
    out["_throttled_ops"] = {
        "count": tracer.counters["vphi.backend.throttled_ops"],
    }
    return out
