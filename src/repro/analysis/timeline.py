"""Per-request timelines: Fig 3's I/O path, annotated with live times.

Enable the ``vphi.timeline`` trace category on a VM's tracer (the vPHI
frontend and backend share it), run traffic, then render what one
request actually did::

    vm.tracer.enable("vphi.timeline")
    ...
    print(render_timeline(request_timeline(vm, machine, tag)))
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TimelineStep", "request_timeline", "render_timeline", "traced_tags"]


@dataclass(frozen=True)
class TimelineStep:
    time: float
    elapsed: float  # since the request's first event
    message: str
    op: str


def _records_for(vm, machine, tag: int):
    records = [
        r for r in vm.vphi.frontend.tracer.find("vphi.timeline")
        if r.field("tag") == tag
    ]
    # legacy wiring had the backend emitting on the machine tracer; scan
    # it too unless it is the same object (avoid double-counting records)
    if machine.tracer is not vm.vphi.frontend.tracer:
        records += [
            r for r in machine.tracer.find("vphi.timeline")
            if r.field("tag") == tag and r.field("vm") == vm.name
        ]
    records.sort(key=lambda r: r.time)
    return records


def traced_tags(vm) -> list[int]:
    """Tags with frontend-side timeline records, in submission order."""
    seen: list[int] = []
    for r in vm.vphi.frontend.tracer.find("vphi.timeline"):
        tag = r.field("tag")
        if tag not in seen:
            seen.append(tag)
    return seen


def request_timeline(vm, machine, tag: int) -> list[TimelineStep]:
    """The ordered steps one request took through the stack."""
    records = _records_for(vm, machine, tag)
    if not records:
        return []
    t0 = records[0].time
    return [
        TimelineStep(r.time, r.time - t0, r.message, r.field("op", "?"))
        for r in records
    ]


def render_timeline(steps: list[TimelineStep]) -> str:
    if not steps:
        return "(no timeline records — enable the 'vphi.timeline' category)"
    op = steps[0].op
    lines = [f"request timeline ({op}):"]
    for step in steps:
        lines.append(f"  +{step.elapsed * 1e6:8.1f} us  {step.message}")
    total = steps[-1].elapsed
    lines.append(f"  total ring round trip: {total * 1e6:.1f} us")
    return "\n".join(lines)
