"""Request-lifecycle span analysis: breakdowns, invariants, export checks.

The vPHI datapath stamps every request's :class:`~repro.sim.Span` with
phase marks (guest marshal, descriptor post, ring residency, backend
pop, host syscall, completion push, interrupt delivery, guest wake —
see ``repro.vphi.ops.SPAN_PHASE_ORDER``).  This module turns the
collected spans into the paper's §IV-style accounting:

* :func:`span_breakdown` — per-op critical-path decomposition.  Because
  phase durations telescope between consecutive marks, every op's phase
  totals sum *exactly* to its total measured latency; nothing is lost
  and nothing is double-counted.
* :func:`check_span_invariants` — the machine-checkable contract behind
  that claim (monotone gap-free phases, sums matching end-to-end
  latency within ``tol``, no leaked open spans).
* :func:`validate_chrome_trace` — structural validation of
  :meth:`Tracer.export_chrome_trace` output against the Chrome
  trace-event JSON shape Perfetto/``chrome://tracing`` accept.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..sim import Span, Tracer

__all__ = [
    "OpSpanBreakdown",
    "span_breakdown",
    "check_span_invariants",
    "render_span_breakdown",
    "validate_chrome_trace",
]


@dataclass
class OpSpanBreakdown:
    """Aggregate phase accounting for one op across its finished spans."""

    op: str
    count: int = 0
    total: float = 0.0
    #: phase name -> summed seconds across this op's spans.
    phases: dict[str, float] = field(default_factory=dict)
    #: terminal status -> span count (ok / error / timeout / stale).
    statuses: dict[str, int] = field(default_factory=dict)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def phase_share(self, phase: str) -> float:
        """Fraction of this op's total time spent in ``phase``."""
        if self.total <= 0:
            return 0.0
        return self.phases.get(phase, 0.0) / self.total

    def ordered_phases(self) -> list[tuple[str, float]]:
        """Phases in canonical datapath order, then any unknown extras."""
        # deferred: importing repro.vphi at module scope would close an
        # import cycle (vphi -> scif -> analysis.calibration -> here).
        from ..vphi.ops import SPAN_PHASE_ORDER

        known = [(p, self.phases[p]) for p in SPAN_PHASE_ORDER if p in self.phases]
        extra = sorted(
            (p, v) for p, v in self.phases.items() if p not in SPAN_PHASE_ORDER
        )
        return known + extra


def _iter_spans(
    tracer: Tracer,
    ops: Optional[Iterable[str]] = None,
    statuses: Optional[Iterable[str]] = None,
) -> list[Span]:
    wanted_ops = set(ops) if ops is not None else None
    wanted_status = set(statuses) if statuses is not None else None
    return [
        s
        for s in tracer.spans
        if (wanted_ops is None or s.op in wanted_ops)
        and (wanted_status is None or s.status in wanted_status)
    ]


def span_breakdown(
    tracer: Tracer,
    ops: Optional[Iterable[str]] = None,
    statuses: Optional[Iterable[str]] = None,
) -> dict[str, OpSpanBreakdown]:
    """Per-op critical-path decomposition over the tracer's closed spans.

    ``ops``/``statuses`` filter which spans contribute (default: all).
    The returned dict is keyed by op name; each value's phase totals sum
    exactly to its ``total`` (the telescoping-mark invariant).
    """
    out: dict[str, OpSpanBreakdown] = {}
    for span in _iter_spans(tracer, ops, statuses):
        bd = out.setdefault(span.op, OpSpanBreakdown(span.op))
        bd.count += 1
        bd.total += span.elapsed
        bd.statuses[span.status] = bd.statuses.get(span.status, 0) + 1
        for phase, dur in span.phase_durations().items():
            bd.phases[phase] = bd.phases.get(phase, 0.0) + dur
    return out


def check_span_invariants(
    tracer: Tracer,
    tol: float = 1e-9,
    require_closed: bool = True,
) -> list[str]:
    """Every violated span invariant, as a human-readable string.

    An empty list means the tracer's span record is internally
    consistent:

    * marks are monotone and start at/after the span's start time;
    * phase durations are non-negative and **gap-free** — they sum to
      the span's end-to-end elapsed time within ``tol`` simulated
      seconds (the acceptance bound is 1e-9);
    * closed spans carry a terminal status and at least one mark;
    * with ``require_closed``, no span is still open (an open span
      after quiesce is a leak — a lost tag binding on some
      retry/stale/abort path).
    """
    problems: list[str] = []

    def span_id(s: Span) -> str:
        tag = s.tag if s.tags else "-"
        return f"{s.op}[tag={tag} start={s.start:.9f}]"

    for span in tracer.spans:
        if span.status is None:
            problems.append(f"{span_id(span)}: stored span has no status")
        if not span.marks:
            problems.append(f"{span_id(span)}: closed with no phase marks")
            continue
        prev = span.start
        for phase, at in span.marks:
            if at < prev:
                problems.append(
                    f"{span_id(span)}: mark {phase}@{at:.9f} precedes {prev:.9f}"
                )
            prev = at
        durations = span.phase_durations()
        if any(d < 0 for d in durations.values()):
            problems.append(f"{span_id(span)}: negative phase duration")
        gap = abs(sum(durations.values()) - span.elapsed)
        if gap > tol:
            problems.append(
                f"{span_id(span)}: phases sum {sum(durations.values()):.12f} "
                f"!= elapsed {span.elapsed:.12f} (gap {gap:.3e} > tol {tol:.0e})"
            )
    if require_closed and tracer.active_spans:
        leaked = sorted(set(id(s) for s in tracer.active_spans.values()))
        tags = sorted(tracer.active_spans)
        problems.append(
            f"{len(leaked)} span(s) still open after quiesce (tags {tags})"
        )
    return problems


def render_span_breakdown(breakdowns: dict[str, OpSpanBreakdown]) -> str:
    """A per-op table: count, mean latency, and phase shares."""
    lines = ["request lifecycle (per-op span breakdown):"]
    if not breakdowns:
        lines.append("  (no spans recorded)")
        return "\n".join(lines)
    for op in sorted(breakdowns):
        bd = breakdowns[op]
        status = ", ".join(f"{k}={v}" for k, v in sorted(bd.statuses.items()))
        lines.append(
            f"  {op:<14} n={bd.count:<5} mean={bd.mean * 1e6:9.2f} us  [{status}]"
        )
        for phase, total in bd.ordered_phases():
            per = total / bd.count if bd.count else 0.0
            lines.append(
                f"    {phase:<16} {per * 1e6:9.2f} us  {bd.phase_share(phase):6.1%}"
            )
    return "\n".join(lines)


_X_REQUIRED = ("name", "ph", "pid", "tid", "ts", "dur")


def validate_chrome_trace(doc) -> list[str]:
    """Structural problems in a Chrome trace-event JSON document.

    Empty list == the document is loadable by Perfetto /
    ``chrome://tracing``: a ``traceEvents`` array of ``X`` (complete)
    and ``M`` (metadata) events with numeric non-negative ``ts``/``dur``
    and integer ``pid``/``tid``.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"document is {type(doc).__name__}, expected object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents array"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph == "M":
            if ev.get("name") != "process_name":
                problems.append(f"{where}: unexpected metadata event {ev.get('name')!r}")
            if not isinstance(ev.get("args", {}).get("name"), str):
                problems.append(f"{where}: metadata missing args.name")
            continue
        if ph != "X":
            problems.append(f"{where}: unsupported phase {ph!r}")
            continue
        for key in _X_REQUIRED:
            if key not in ev:
                problems.append(f"{where}: missing {key!r}")
        if not isinstance(ev.get("name"), str):
            problems.append(f"{where}: name is not a string")
        for key in ("ts", "dur"):
            v = ev.get(key)
            if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
                problems.append(f"{where}: {key} must be a non-negative number")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int) or isinstance(ev.get(key), bool):
                problems.append(f"{where}: {key} must be an integer")
    return problems
