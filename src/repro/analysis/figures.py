"""Programmatic figure data: run the evaluation, return/serialize series.

The benchmark files under ``benchmarks/`` assert shapes; this module is
the library face of the same experiments — it returns the raw series so
downstream users can plot or export them (``to_csv``).
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Optional, Sequence

__all__ = ["FigureSeries", "fig4_latency", "fig5_throughput", "fig678_dgemm", "to_csv"]


@dataclass
class FigureSeries:
    """One figure's data: column names + rows."""

    figure: str
    columns: list[str]
    rows: list[tuple] = field(default_factory=list)

    def column(self, name: str) -> list:
        i = self.columns.index(name)
        return [r[i] for r in self.rows]


def to_csv(series: FigureSeries) -> str:
    out = io.StringIO()
    out.write(",".join(series.columns) + "\n")
    for row in series.rows:
        out.write(",".join(f"{v:.9g}" if isinstance(v, float) else str(v) for v in row))
        out.write("\n")
    return out.getvalue()


def _fresh_machine():
    from ..system import Machine

    return Machine(cards=1).boot()


def fig4_latency(sizes: Optional[Sequence[int]] = None) -> FigureSeries:
    """Fig 4: send-recv latency (seconds) per message size, both stacks."""
    from ..workloads import ClientContext, sendrecv_latency

    sizes = list(sizes or (1, 64, 256, 1024, 4096, 16384, 65536))
    machine = _fresh_machine()
    native = sendrecv_latency(machine, ClientContext.native(machine), sizes)
    machine2 = _fresh_machine()
    vm = machine2.create_vm("vm0")
    vphi = sendrecv_latency(machine2, ClientContext.guest(vm), sizes)
    series = FigureSeries("fig4", ["size_bytes", "native_s", "vphi_s"])
    for (s, nl), (_, vl) in zip(native, vphi):
        series.rows.append((s, nl, vl))
    return series


def fig5_throughput(sizes: Optional[Sequence[int]] = None) -> FigureSeries:
    """Fig 5: remote-read throughput (bytes/s) per transfer size."""
    from ..workloads import ClientContext, rma_read_throughput

    MB = 1 << 20
    sizes = list(sizes or (64 * 1024, 256 * 1024, MB, 4 * MB, 16 * MB, 64 * MB, 256 * MB))
    machine = _fresh_machine()
    native = rma_read_throughput(machine, ClientContext.native(machine), sizes)
    machine2 = _fresh_machine()
    vm = machine2.create_vm("vm0")
    vphi = rma_read_throughput(machine2, ClientContext.guest(vm), sizes)
    series = FigureSeries("fig5", ["size_bytes", "native_bps", "vphi_bps"])
    for (s, nb), (_, vb) in zip(native, vphi):
        series.rows.append((s, nb, vb))
    return series


def fig678_dgemm(threads: int, problem_sizes: Optional[Sequence[int]] = None) -> FigureSeries:
    """Figs 6-8: dgemm total time per input size, both stacks."""
    from ..coi import start_coi_daemon
    from ..mpss import micnativeloadex
    from ..workloads import ClientContext, DGEMM_BINARY, input_bytes

    problem_sizes = list(problem_sizes or (500, 1000, 2000, 4000, 8000))
    series = FigureSeries(
        f"fig_dgemm_{threads}",
        ["n", "input_bytes", "native_total_s", "vphi_total_s", "compute_s"],
    )
    for n in problem_sizes:
        machine = _fresh_machine()
        start_coi_daemon(machine, card=0)
        ctx = ClientContext.native(machine)
        p = ctx.spawn(micnativeloadex(machine, ctx, DGEMM_BINARY,
                                      argv=[str(n), str(threads)]))
        machine.run()
        native = p.value

        machine2 = _fresh_machine()
        start_coi_daemon(machine2, card=0)
        vm = machine2.create_vm("vm0")
        gctx = ClientContext.guest(vm)
        p2 = gctx.spawn(micnativeloadex(machine2, gctx, DGEMM_BINARY,
                                        argv=[str(n), str(threads)]))
        machine2.run()
        vphi = p2.value
        series.rows.append(
            (n, input_bytes(n), native.total_time, vphi.total_time,
             native.compute_time)
        )
    return series
