"""Cluster-run accounting: migration downtime + placement skew.

Consumes what the cluster layer already records — the
:class:`~repro.cluster.migrate.MigrationReport` list on a
:class:`~repro.cluster.Cluster` and its scheduler's load map — and
folds it into a print-ready report: per-phase downtime aggregates (the
vPHI analogue of the classic pre-copy/stop-and-copy split), churn tally
(migrations vs evictions), and the post-run placement picture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "ClusterReport",
    "MigrationStats",
    "cluster_report",
    "migration_stats",
    "render_migration",
]


def _pct(xs: list, q: float) -> float:
    if not xs:
        return 0.0
    xs = sorted(xs)
    idx = min(len(xs) - 1, int(q * len(xs)))
    return xs[idx]


@dataclass(frozen=True)
class MigrationStats:
    """Aggregates over a cluster's completed live migrations."""

    count: int
    cross_host: int
    broken: int
    total_ops_replayed: int
    total_pages_zapped: int
    #: downtime distribution (s)
    downtime_mean: float
    downtime_p50: float
    downtime_max: float
    #: mean seconds per phase, over all migrations
    phase_means: dict


@dataclass(frozen=True)
class ClusterReport:
    """One cluster run, summarized."""

    hosts: int
    cards: int
    vms: int
    evicted: int
    failed_hosts: int
    offline_cards: int
    migration: MigrationStats
    #: per-card share load at report time, keyed by ``str(CardRef)``
    loads: dict
    imbalance: float


def migration_stats(cluster) -> MigrationStats:
    """Fold the cluster's migration reports into one stats block."""
    reports = cluster.migrations
    downtimes = [r.downtime for r in reports]
    phases: dict = {}
    for r in reports:
        for phase, t in r.phases.items():
            phases[phase] = phases.get(phase, 0.0) + t
    n = max(len(reports), 1)
    return MigrationStats(
        count=len(reports),
        cross_host=sum(1 for r in reports if r.cross_host),
        broken=sum(1 for r in reports if r.broken),
        total_ops_replayed=sum(r.replayed_ops for r in reports),
        total_pages_zapped=sum(r.pages_zapped for r in reports),
        downtime_mean=sum(downtimes) / n,
        downtime_p50=_pct(downtimes, 0.5),
        downtime_max=max(downtimes, default=0.0),
        phase_means={p: t / n for p, t in phases.items()},
    )


def cluster_report(cluster) -> ClusterReport:
    sched = cluster.scheduler
    return ClusterReport(
        hosts=cluster.hosts,
        cards=len(sched.loads),
        vms=len(cluster.placements),
        evicted=len(cluster.evicted),
        failed_hosts=len(cluster.failed_hosts),
        offline_cards=len(sched.offline),
        migration=migration_stats(cluster),
        loads={str(ref): load for ref, load in sorted(sched.loads.items())},
        imbalance=sched.imbalance(),
    )


def _us(t: float) -> str:
    return f"{t * 1e6:.1f}"


def render_migration(cluster, limit: Optional[int] = 8) -> str:
    """Migration + placement summary, print-ready."""
    rep = cluster_report(cluster)
    mig = rep.migration
    lines = [
        f"Cluster: {rep.hosts} hosts x {rep.cards // max(rep.hosts, 1)} "
        f"cards, {rep.vms} VMs placed, {rep.evicted} evicted"
        + (f", {rep.failed_hosts} failed hosts" if rep.failed_hosts else "")
        + (f", {rep.offline_cards} offline cards" if rep.offline_cards
           else ""),
        f"  placement skew {rep.imbalance:.2f} shares  loads: "
        + "  ".join(f"{ref}={load:g}" for ref, load in rep.loads.items()),
        f"  migrations {mig.count} ({mig.cross_host} cross-host, "
        f"{mig.broken} broken)  ops replayed {mig.total_ops_replayed}  "
        f"pages zapped {mig.total_pages_zapped}",
    ]
    if mig.count:
        lines.append(
            f"  downtime us: mean {_us(mig.downtime_mean)}  "
            f"p50 {_us(mig.downtime_p50)}  max {_us(mig.downtime_max)}"
        )
        lines.append(
            "  phase means us: "
            + "  ".join(f"{p}={_us(t)}"
                        for p, t in mig.phase_means.items())
        )
        shown = cluster.migrations if limit is None else \
            cluster.migrations[:limit]
        for r in shown:
            lines.append(
                f"    {r.vm:<12} {str(r.source):>6} -> {str(r.dest):<6} "
                f"ops={r.replayed_ops:<4} journal={r.journal_size:<4} "
                f"downtime={_us(r.downtime)}us"
            )
        hidden = mig.count - len(shown)
        if hidden > 0:
            lines.append(f"    ... and {hidden} more migrations")
    return "\n".join(lines)
