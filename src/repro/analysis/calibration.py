"""Calibrated timing constants for the whole stack.

Single source of truth: every layer charges simulated time using these
numbers, and they are fitted so the model hits the paper's §IV anchors:

* native SCIF send-recv of 1 B completes in **7 µs** (Fig 4);
* the same operation through vPHI takes **382 µs**, i.e. +375 µs of
  virtualization overhead, **93 %** of which is the frontend driver's
  sleep/wake-up scheme (§IV-B breakdown);
* native remote-read peaks at **6.4 GB/s**, vPHI at **4.6 GB/s = 72 %**
  (Fig 5).

The derivations are spelled out next to each constant; tests in
``tests/analysis/test_calibration.py`` assert the arithmetic so the anchors
cannot drift silently.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.core import US

__all__ = [
    "HostParams",
    "CardParams",
    "ScifCosts",
    "VPhiCosts",
    "HOST",
    "CARD_3120P",
    "SCIF_COSTS",
    "VPHI_COSTS",
    "GB",
    "GBPS",
]

GB = 1 << 30
#: 1 GB/s in bytes per simulated second — decimal, matching the PCIe
#: convention (the link math yields 6.4e9 B/s for gen2 x16 at 80%).
GBPS = 1e9


@dataclass(frozen=True)
class HostParams:
    """The paper's host: 1x Xeon E5-2695 v2, 64 GB DDR3-1600."""

    cores: int = 12
    ram_bytes: int = 64 * GB
    #: sustained single-stream memcpy bandwidth of the guest's vCPU doing
    #: the user<->kernel bounce copies (DDR3-1600, quad channel; the fit
    #: below needs ~18 GB/s for the 72 % peak-throughput anchor).
    memcpy_bandwidth: float = 18.0 * GBPS


@dataclass(frozen=True)
class CardParams:
    """Intel Xeon Phi 3120P (§IV-A)."""

    name: str = "3120P"
    family: str = "x100"
    #: 57 physical cores; the uOS reserves one for itself (§III: the
    #: scheduler "runs on a dedicated Xeon Phi core").
    cores: int = 57
    threads_per_core: int = 4
    clock_hz: float = 1.10e9
    gddr_bytes: int = 6 * GB
    #: DP flops per core per cycle (512-bit FMA: 8 lanes x 2).
    dp_flops_per_cycle: int = 16

    @property
    def peak_dp_flops(self) -> float:
        return self.cores * self.clock_hz * self.dp_flops_per_cycle

    @property
    def usable_cores(self) -> int:
        return self.cores - 1


@dataclass(frozen=True)
class ScifCosts:
    """Native SCIF path costs.

    Fig 4 anchor: one 1-byte send-recv completes in 7 µs =
    ``syscall + driver + pcie_msg + card_isr + pcie_msg + completion``
    = 0.5 + 1.0 + 2.0 + 1.0 + 2.0 + 0.5.
    """

    syscall: float = 0.5 * US
    driver: float = 1.0 * US
    #: one-way latency of a small PCIe message/doorbell.
    pcie_msg: float = 2.0 * US
    card_isr: float = 1.0 * US
    completion: float = 0.5 * US
    #: send-recv payloads move through driver-managed ring copies, slower
    #: than the DMA path (programmed-I/O-ish).
    sendrecv_bandwidth: float = 2.5 * GBPS
    #: fixed DMA programming cost per RMA request.
    rma_setup: float = 10.0 * US
    #: native remote-read peak — PCIe gen2 x16 effective (Fig 5 anchor).
    rma_bandwidth: float = 6.4 * GBPS
    #: threshold below which SCIF uses CPU copies instead of DMA.
    dma_threshold: int = 4096
    #: per-page cost of get_user_pages during scif_register.
    pin_page: float = 0.15 * US

    @property
    def one_byte_latency(self) -> float:
        return (
            self.syscall
            + self.driver
            + self.pcie_msg
            + self.card_isr
            + self.pcie_msg
            + self.completion
        )


@dataclass(frozen=True)
class VPhiCosts:
    """vPHI additional path costs.

    Fig 4 anchor: vPHI adds 375 µs to the 1-byte latency, split as
    93 % wait-scheme (349 µs) + 7 % everything else (26 µs =
    frontend 5 + kick/vmexit 5 + backend 6 + host syscall 0.5 (already in
    ScifCosts, so only the *extra* guest syscall counts) + irq 5 +
    guest-side copies/return 4.5).
    """

    #: frontend driver request marshalling (guest kernel).
    frontend: float = 5.0 * US
    #: virtio kick -> vmexit -> backend notified.
    kick_vmexit: float = 5.0 * US
    #: backend pops the ring, maps buffers, dispatches the host syscall.
    backend: float = 6.0 * US
    #: virtual interrupt injection host -> guest.
    irq_inject: float = 5.0 * US
    #: guest syscall entry/exit + response demux back to user space.
    guest_return: float = 5.5 * US
    #: the frontend's interrupt-mode sleep/wake-up scheme: enqueue on the
    #: wait queue, schedule away, and on wakeup re-schedule + scan the
    #: shared ring.  93 % of the 375 µs overhead (§IV-B).
    wakeup_scheme: float = 348.75 * US
    #: per-additional-sleeper ring-scan cost when wake_all fans out.
    wakeup_per_waiter: float = 2.0 * US
    #: polling mode alternative: ring-check period (ablation A1).
    poll_interval: float = 0.5 * US
    #: per-KMALLOC-chunk ring descriptor + backend submission cost (no
    #: guest wakeup per chunk: the frontend sleeps once per ioctl).  Each
    #: chunk additionally pays the DMA setup (10 µs) and one completion
    #: message (2 µs) on the wire, so the effective per-chunk overhead is
    #: ~22 µs — which is what lands the Fig 5 peak at 72 % of native.
    per_chunk: float = 10.0 * US
    #: cost to create + destroy a QEMU worker thread (non-blocking mode).
    worker_spawn: float = 25.0 * US
    worker_teardown: float = 10.0 * US

    @property
    def fixed_overhead(self) -> float:
        """Size-independent extra latency vs native (the Fig 4 offset)."""
        return (
            self.frontend
            + self.kick_vmexit
            + self.backend
            + self.irq_inject
            + self.guest_return
            + self.wakeup_scheme
        )

    @property
    def wait_scheme_share(self) -> float:
        return self.wakeup_scheme / self.fixed_overhead


#: module-level singletons used across the stack
HOST = HostParams()
CARD_3120P = CardParams()
SCIF_COSTS = ScifCosts()
VPHI_COSTS = VPhiCosts()


def predicted_native_latency(nbytes: int, costs: ScifCosts = SCIF_COSTS) -> float:
    """Closed-form Fig 4 native series (for calibration tests)."""
    return costs.one_byte_latency + nbytes / costs.sendrecv_bandwidth


def predicted_vphi_latency(
    nbytes: int,
    costs: ScifCosts = SCIF_COSTS,
    vcosts: VPhiCosts = VPHI_COSTS,
    host: HostParams = HOST,
) -> float:
    """Closed-form Fig 4 vPHI series: native + fixed offset + the guest's
    user->kmalloc bounce copy on the send side."""
    return (
        predicted_native_latency(nbytes, costs)
        + vcosts.fixed_overhead
        + nbytes / host.memcpy_bandwidth
    )


def predicted_native_rma_time(nbytes: int, costs: ScifCosts = SCIF_COSTS) -> float:
    """Closed-form Fig 5 native remote-read completion time."""
    return (
        costs.syscall
        + costs.driver
        + costs.rma_setup
        + nbytes / costs.rma_bandwidth
        + costs.pcie_msg
        + costs.completion
    )


def predicted_vphi_rma_time(
    nbytes: int,
    chunk: int = 4 * 1024 * 1024,
    costs: ScifCosts = SCIF_COSTS,
    vcosts: VPhiCosts = VPHI_COSTS,
    host: HostParams = HOST,
) -> float:
    """Closed-form Fig 5 vPHI remote-read (scif_vreadfrom) completion time.

    One ioctl pays the fixed vPHI overhead once; each KMALLOC chunk pays a
    ring submission (10 µs) + DMA setup (10 µs) + completion message
    (2 µs), rides the link, and the whole payload is bounce-copied
    kernel->user in the guest once.  Peak throughput:
    1 / (22 µs/4 MB + 1/6.4 + 1/18) GB/s = 4.6 GB/s = 72 % of native.
    """
    nchunks = max(1, -(-nbytes // chunk))
    per_chunk = vcosts.per_chunk + costs.rma_setup + costs.pcie_msg
    return (
        costs.syscall
        + costs.driver
        + vcosts.fixed_overhead
        + nchunks * per_chunk
        + nbytes / costs.rma_bandwidth
        + nbytes / host.memcpy_bandwidth
        + costs.completion
    )
