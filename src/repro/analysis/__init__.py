"""Analysis: calibration constants, closed-form predictors, figure data."""

from .breakdown import PhaseShare, overhead_breakdown, render_breakdown
from .calibration import (
    CARD_3120P,
    GB,
    GBPS,
    HOST,
    SCIF_COSTS,
    VPHI_COSTS,
    CardParams,
    HostParams,
    ScifCosts,
    VPhiCosts,
    predicted_native_latency,
    predicted_native_rma_time,
    predicted_vphi_latency,
    predicted_vphi_rma_time,
)
from .figures import FigureSeries, fig4_latency, fig5_throughput, fig678_dgemm, to_csv
from .timeline import TimelineStep, render_timeline, request_timeline, traced_tags

__all__ = [
    "CARD_3120P",
    "PhaseShare",
    "overhead_breakdown",
    "render_breakdown",
    "render_timeline",
    "request_timeline",
    "traced_tags",
    "TimelineStep",
    "CardParams",
    "FigureSeries",
    "GB",
    "GBPS",
    "HOST",
    "HostParams",
    "SCIF_COSTS",
    "ScifCosts",
    "VPHI_COSTS",
    "VPhiCosts",
    "fig4_latency",
    "fig5_throughput",
    "fig678_dgemm",
    "predicted_native_latency",
    "predicted_native_rma_time",
    "predicted_vphi_latency",
    "predicted_vphi_rma_time",
    "to_csv",
]
