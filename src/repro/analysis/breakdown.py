"""The §IV-B breakdown analysis, produced from live trace data.

"we performed deeper breakdown measurements to further investigate the
cause of this overhead.  Based on the breakdown analysis, we conclude
that 93% of this overhead attributes to the waiting scheme of vPHI
inside the frontend driver."

:func:`overhead_breakdown` reproduces that attribution for any vPHI
frontend after it has carried traffic: per-request phase costs, each
phase's share of the +375 µs virtualization overhead, rendered the way
the paper narrates it.
"""

from __future__ import annotations

from dataclasses import dataclass

from .calibration import SCIF_COSTS

__all__ = [
    "ConcurrencySnapshot",
    "ConcurrencyStats",
    "OpStats",
    "PhaseShare",
    "RecoveryStats",
    "concurrency_snapshot",
    "concurrency_stats",
    "overhead_breakdown",
    "per_op_stats",
    "recovery_stats",
    "render_breakdown",
    "render_concurrency",
    "render_per_op",
    "render_recovery",
]


@dataclass(frozen=True)
class PhaseShare:
    phase: str
    per_request: float  # seconds
    share_of_overhead: float


def overhead_breakdown(frontend) -> list[PhaseShare]:
    """Per-request phase costs from a frontend's tracer, most expensive
    first.  Phases: frontend marshalling, data copies, kick/vmexit, the
    wait (split into wakeup-scheme vs backend+host+irq service), and the
    guest return path."""
    acc = frontend.tracer.accumulators
    n = max(frontend.requests, 1)
    wakeup = acc.get("vphi.wait_scheme_time", 0.0)
    wait_total = acc.get("vphi.phase.wait", 0.0)
    phases = {
        "frontend driver (marshalling)": acc.get("vphi.phase.frontend", 0.0),
        "user<->kernel copies": acc.get("vphi.phase.copy", 0.0),
        "virtio kick (vmexit)": acc.get("vphi.phase.kick", 0.0),
        "sleep/wake-up scheme": wakeup,
        "backend + host syscall + irq": max(wait_total - wakeup, 0.0),
        "response demux + return": acc.get("vphi.phase.guest_return", 0.0),
    }
    # the overhead denominator: everything beyond the native operation.
    # wait includes the native op itself (the host-side SCIF call), so
    # subtract the native cost observed once per request.
    native_per_req = SCIF_COSTS.one_byte_latency  # control-plane floor
    service = phases["backend + host syscall + irq"]
    phases["backend + host syscall + irq"] = max(service - native_per_req * n, 0.0)
    total_overhead = sum(phases.values())
    if total_overhead <= 0:
        return []
    out = [
        PhaseShare(name, value / n, value / total_overhead)
        for name, value in phases.items()
    ]
    out.sort(key=lambda p: p.per_request, reverse=True)
    return out


@dataclass(frozen=True)
class OpStats:
    """Per-operation service metrics for one VM's vPHI traffic."""

    op: str
    submitted: int
    served: int
    errors: int
    mean_latency: float  # seconds; 0.0 when nothing completed
    #: fault-recovery accounting (all zero on fault-free runs)
    injected: int = 0
    retried: int = 0
    recovered: int = 0
    failed: int = 0
    #: requests serviced by a pool member instead of a blocking worker
    #: (zero under the default blocking dispatch)
    pooled: int = 0
    #: completions from a pre-reset epoch dropped at the frontend demux
    #: (zero unless a session recovery fenced mid-flight requests)
    stale_dropped: int = 0

    @property
    def error_rate(self) -> float:
        return self.errors / self.served if self.served else 0.0


def per_op_stats(frontend) -> list[OpStats]:
    """Per-op submitted/served/error/latency metrics from live traces.

    Every key comes from the op registry's declared trace keys — the
    analysis layer holds no op-name string literals — so newly registered
    operations show up here with zero extra wiring.  The frontend and
    backend share the VM tracer, so one tracer holds both sides' counts.
    """
    from ..vphi.ops import registered_ops

    tracer = frontend.tracer
    out = []
    for spec in registered_ops():
        submitted = tracer.counters.get(spec.counter_key, 0)
        served = tracer.counters.get(spec.served_key, 0)
        errors = tracer.counters.get(spec.error_key, 0)
        if not (submitted or served):
            continue
        stat = tracer.stats.get(spec.latency_key)
        mean_latency = stat.mean if stat is not None else 0.0
        out.append(OpStats(
            spec.op_name, submitted, served, errors, mean_latency,
            injected=tracer.counters.get(spec.injected_key, 0),
            retried=tracer.counters.get(spec.retried_key, 0),
            recovered=tracer.counters.get(spec.recovered_key, 0),
            failed=tracer.counters.get(spec.failed_key, 0),
            pooled=tracer.counters.get(spec.pooled_key, 0),
            stale_dropped=tracer.counters.get(spec.stale_key, 0),
        ))
    out.sort(key=lambda s: s.submitted, reverse=True)
    return out


def render_per_op(frontend) -> str:
    """Human-readable per-op service table."""
    rows = per_op_stats(frontend)
    lines = ["vPHI per-op service metrics:"]
    if not rows:
        lines.append("  (no traffic)")
        return "\n".join(lines)
    faulty = any(s.injected or s.retried or s.recovered or s.failed
                 for s in rows)
    pooled = any(s.pooled for s in rows)
    stale = any(s.stale_dropped for s in rows)
    header = (f"  {'op':<14} {'submitted':>9} {'served':>7} "
              f"{'errors':>7} {'mean latency':>14}")
    if pooled:
        header += f" {'pooled':>6}"
    if faulty:
        header += f" {'inj':>5} {'retry':>5} {'recov':>5} {'fail':>5}"
    if stale:
        header += f" {'stale':>5}"
    lines.append(header)
    for s in rows:
        line = (
            f"  {s.op:<14} {s.submitted:>9} {s.served:>7} {s.errors:>7} "
            f"{s.mean_latency * 1e6:>11.1f} us"
        )
        if pooled:
            line += f" {s.pooled:>6}"
        if faulty:
            line += (f" {s.injected:>5} {s.retried:>5} "
                     f"{s.recovered:>5} {s.failed:>5}")
        if stale:
            line += f" {s.stale_dropped:>5}"
        lines.append(line)
    return "\n".join(lines)


@dataclass(frozen=True)
class ConcurrencyStats:
    """How one VM's event loop and backend pool spent a run.

    Under the paper's blocking dispatch the interesting number is
    ``event_loop_occupancy`` — the fraction of wall time the vCPU was
    *paused* inside a blocking host syscall (§III's whole-VM freeze).
    Under pooled dispatch that fraction collapses toward zero and the
    pool-side numbers take over the story.
    """

    vm: str
    elapsed: float  # seconds of simulated time covered
    #: fraction of the run the QEMU event loop was frozen (vCPU paused)
    event_loop_occupancy: float
    #: pool numbers (all zero when running the blocking default)
    pool_size: int = 0
    pool_utilization: float = 0.0
    peak_inflight: int = 0
    pooled_requests: int = 0
    credit_wait: float = 0.0
    #: machine-wide arbiter grants charged to this VM
    arbiter_grants: int = 0

    @property
    def pooled(self) -> bool:
        return self.pool_size > 0


@dataclass(frozen=True)
class ConcurrencySnapshot:
    """A window boundary for :func:`concurrency_stats`.

    Take one with :func:`concurrency_snapshot` at the start of the
    interval you care about, run traffic, then pass it back as
    ``since=``; the reported occupancy/utilization cover exactly that
    window.  The snapshot counts any pause still open at capture time
    (``Domain.paused_seconds``), so a vCPU frozen across the boundary is
    charged to each window only for the part inside it.
    """

    vm: str
    time: float
    paused_seconds: float
    pool_busy: float = 0.0
    pool_credit_wait: float = 0.0
    pool_completed: int = 0
    arbiter_grants: int = 0


def concurrency_snapshot(vm) -> ConcurrencySnapshot:
    """Capture one VM's concurrency counters at the current sim time."""
    backend = vm.vphi.backend
    pool = backend.pool
    if pool is None:
        return ConcurrencySnapshot(
            vm.name, backend.sim.now, vm.domain.paused_seconds
        )
    return ConcurrencySnapshot(
        vm.name,
        backend.sim.now,
        vm.domain.paused_seconds,
        pool_busy=pool.busy_time,
        pool_credit_wait=pool.credit_wait,
        pool_completed=pool.completed,
        arbiter_grants=pool.arbiter.grants_by_vm.get(vm.name, 0),
    )


def concurrency_stats(
    vm,
    elapsed: float | None = None,
    since: ConcurrencySnapshot | None = None,
) -> ConcurrencyStats:
    """Event-loop occupancy + pool utilization for one vPHI-enabled VM.

    With no arguments the window is the whole run (time 0 to the
    simulation clock, which is right after a ``machine.run()`` to
    quiescence).  To measure a sub-interval pass ``since=`` a
    :class:`ConcurrencySnapshot` taken at the window's start — the
    paused/busy/credit numbers are then *deltas* against that boundary.
    A bare ``elapsed`` (without ``since``) only rescales whole-run
    totals and is almost never what a sub-window measurement wants:
    dividing run-total paused time by a shorter window inflates
    occupancy (historically masked by the ``min(..., 1.0)`` clamp).
    """
    backend = vm.vphi.backend
    now = backend.sim.now
    if since is not None:
        if since.vm != vm.name:
            raise ValueError(
                f"snapshot is for VM {since.vm!r}, stats requested for {vm.name!r}"
            )
        if elapsed is None:
            elapsed = now - since.time
        paused = vm.domain.paused_seconds - since.paused_seconds
    else:
        if elapsed is None:
            elapsed = now
        paused = vm.domain.paused_seconds
    occupancy = min(paused / elapsed, 1.0) if elapsed > 0 else 0.0
    pool = backend.pool
    if pool is None:
        return ConcurrencyStats(vm.name, elapsed, occupancy)
    base = since or ConcurrencySnapshot(vm.name, 0.0, 0.0)
    busy = pool.busy_time - base.pool_busy
    util = min(busy / (pool.size * elapsed), 1.0) if elapsed > 0 else 0.0
    return ConcurrencyStats(
        vm.name, elapsed, occupancy,
        pool_size=pool.size,
        pool_utilization=util,
        peak_inflight=pool.peak_inflight,
        pooled_requests=pool.completed - base.pool_completed,
        credit_wait=pool.credit_wait - base.pool_credit_wait,
        arbiter_grants=pool.arbiter.grants_by_vm.get(vm.name, 0)
        - base.arbiter_grants,
    )


def render_concurrency(
    vm,
    elapsed: float | None = None,
    since: ConcurrencySnapshot | None = None,
) -> str:
    """Human-readable concurrency summary for one VM."""
    s = concurrency_stats(vm, elapsed, since=since)
    mode = f"pooled x{s.pool_size}" if s.pooled else "blocking"
    lines = [
        f"vPHI backend concurrency ({s.vm}, {mode} dispatch):",
        f"  event-loop occupancy (vCPU paused)  {s.event_loop_occupancy:6.1%}",
    ]
    if s.pooled:
        lines += [
            f"  pool utilization                    {s.pool_utilization:6.1%}",
            f"  peak in-flight window               {s.peak_inflight:>6}",
            f"  requests pooled                     {s.pooled_requests:>6}",
            f"  time waiting for dispatch credits   {s.credit_wait * 1e6:6.1f} us",
            f"  card arbiter grants                 {s.arbiter_grants:>6}",
        ]
    return "\n".join(lines)


@dataclass(frozen=True)
class RecoveryStats:
    """How one VM's vPHI session weathered card resets and restarts.

    All-zero on fault-free runs; with ``recovery_policy`` armed the
    interesting numbers are ``recoveries`` (complete journal replays),
    ``rebuild_mean`` (how long the session stayed degraded) and
    ``stale_dropped`` (pre-reset completions the epoch fence kept out of
    the rebuilt state).
    """

    vm: str
    policy: str
    state: str
    resets_seen: int = 0
    recoveries: int = 0
    replayed_ops: int = 0
    replay_failures: int = 0
    endpoints_lost: int = 0
    aborted_inflight: int = 0
    stale_dropped: int = 0
    queued_submits: int = 0
    rejected_submits: int = 0
    journal_size: int = 0
    circuit_open: bool = False
    rebuild_mean: float = 0.0  # seconds
    rebuild_max: float = 0.0  # seconds


def recovery_stats(vm) -> RecoveryStats:
    """Session-recovery metrics for one vPHI-enabled VM."""
    ses = vm.vphi.frontend.session
    times = ses.rebuild_times
    return RecoveryStats(
        vm.name,
        policy=ses.policy,
        state=ses.state,
        resets_seen=ses.resets_seen,
        recoveries=ses.recoveries,
        replayed_ops=ses.replayed_ops,
        replay_failures=ses.replay_failures,
        endpoints_lost=ses.tracer.counters.get("vphi.session.endpoints_lost", 0),
        aborted_inflight=ses.aborted_inflight,
        stale_dropped=ses.stale_drops,
        queued_submits=ses.queued_submits,
        rejected_submits=ses.rejected_submits,
        journal_size=ses.journal.size,
        circuit_open=ses.state == "broken",
        rebuild_mean=sum(times) / len(times) if times else 0.0,
        rebuild_max=max(times) if times else 0.0,
    )


def render_recovery(vm) -> str:
    """Human-readable session-recovery summary for one VM."""
    s = recovery_stats(vm)
    lines = [
        f"vPHI session recovery ({s.vm}, policy={s.policy}, state={s.state}):",
        f"  resets seen                         {s.resets_seen:>6}",
        f"  sessions rebuilt                    {s.recoveries:>6}",
        f"  ops replayed                        {s.replayed_ops:>6}",
        f"  replay failures                     {s.replay_failures:>6}",
        f"  endpoints lost                      {s.endpoints_lost:>6}",
        f"  in-flight requests fenced           {s.aborted_inflight:>6}",
        f"  stale completions dropped           {s.stale_dropped:>6}",
        f"  submits queued during rebuild       {s.queued_submits:>6}",
        f"  submits rejected (fail-fast)        {s.rejected_submits:>6}",
        f"  journal size (facts)                {s.journal_size:>6}",
    ]
    if s.recoveries:
        lines.append(
            f"  rebuild time mean / max       {s.rebuild_mean * 1e6:8.1f} / "
            f"{s.rebuild_max * 1e6:.1f} us"
        )
    if s.circuit_open:
        lines.append("  CIRCUIT OPEN: session abandoned after repeated resets")
    return "\n".join(lines)


def render_breakdown(frontend) -> str:
    """The human-readable table (what §IV-B summarizes in one sentence)."""
    shares = overhead_breakdown(frontend)
    lines = ["vPHI virtualization overhead breakdown (per request):"]
    for p in shares:
        lines.append(
            f"  {p.phase:<32} {p.per_request * 1e6:8.1f} us  {p.share_of_overhead:6.1%}"
        )
    total = sum(p.per_request for p in shares)
    lines.append(f"  {'total overhead':<32} {total * 1e6:8.1f} us")
    return "\n".join(lines)
