"""Per-tenant SLO accounting for multi-tenant QoS runs.

Builds on the PR 5 trace layer: per-request latency is already recorded
into each VM's sparse geometric histograms
(:class:`~repro.sim.trace.LatencyStat`, one per op), so the SLO
percentiles here come from **merging histogram buckets** — no new
hot-path observations, and a 200-tenant sweep costs one dict walk per
tenant at report time.

The fairness headline is Jain's index

    J(x) = (sum x_i)^2 / (n * sum x_i^2)

over per-tenant throughput: 1.0 = perfectly even, 1/n = one tenant has
everything.  The *weighted* variant normalizes each tenant's throughput
by its wfq share first (x_i / w_i), so under weighted fair queuing the
target is still 1.0 even when the shares are deliberately unequal;
best-effort tenants (share 0) are excluded from the weighted index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..sim.trace import LatencyStat

__all__ = [
    "TenantSLO",
    "QosReport",
    "jain_index",
    "merged_latency_stat",
    "qos_stats",
    "render_qos",
]

#: per-op frontend latency keys all start with this and end with this.
_OP_PREFIX = "vphi.op."
_LATENCY_SUFFIX = ".latency"


def jain_index(values: Iterable[float]) -> float:
    """Jain's fairness index of a sample; 1.0 for an empty/zero sample
    (nothing allocated is vacuously fair)."""
    xs = [float(v) for v in values]
    n = len(xs)
    total = sum(xs)
    if n == 0 or total == 0.0:
        return 1.0
    sq = sum(x * x for x in xs)
    return (total * total) / (n * sq)


def merged_latency_stat(vm, name: str = "merged") -> LatencyStat:
    """One tenant's end-to-end request latency distribution, merged
    bucket-by-bucket from its per-op histograms."""
    merged = LatencyStat(name)
    for key, stat in vm.tracer.stats.items():
        if not (key.startswith(_OP_PREFIX) and key.endswith(_LATENCY_SUFFIX)):
            continue
        merged.count += stat.count
        merged.total += stat.total
        merged.zeros += stat.zeros
        if stat.min < merged.min:
            merged.min = stat.min
        if stat.max > merged.max:
            merged.max = stat.max
        for idx, n in stat.buckets.items():
            merged.buckets[idx] = merged.buckets.get(idx, 0) + n
    return merged


@dataclass(frozen=True)
class TenantSLO:
    """One tenant's service-level summary for a run."""

    name: str
    share: float
    priority: int
    offered: int
    completed: int
    shed: int
    errors: int
    #: completions per second over the measurement window.
    throughput: float
    #: payload bytes completed per second.
    goodput: float
    #: merged per-op latency percentiles (seconds; 0 if nothing completed).
    p50: float
    p95: float
    p99: float
    mean: float

    @property
    def admit_ratio(self) -> float:
        return self.completed / self.offered if self.offered else 1.0


@dataclass(frozen=True)
class QosReport:
    """The whole run: per-tenant rows + fairness headlines."""

    policy: str
    duration: float
    tenants: tuple[TenantSLO, ...]
    #: Jain's index over raw per-tenant throughput.
    jain: float
    #: Jain's index over share-normalized throughput (wfq's target).
    weighted_jain: float
    total_offered: int
    total_completed: int
    total_shed: int
    total_errors: int

    @property
    def worst_p99(self) -> float:
        return max((t.p99 for t in self.tenants if t.completed), default=0.0)


def qos_stats(result) -> QosReport:
    """Build the report from a :class:`~repro.traffic.harness.HarnessResult`
    (duck-typed: anything with ``plan``, ``loads`` and per-load ``vm``)."""
    plan = result.plan
    window = plan.duration
    rows = []
    for load in result.loads:
        stat = merged_latency_stat(load.vm, name=load.name)
        completed = load.completed
        rows.append(TenantSLO(
            name=load.name,
            share=load.spec.share,
            priority=load.spec.priority,
            offered=load.offered,
            completed=completed,
            shed=load.shed,
            errors=load.errors,
            throughput=completed / window,
            goodput=load.bytes_done / window,
            p50=stat.p50 if completed else 0.0,
            p95=stat.p95 if completed else 0.0,
            p99=stat.p99 if completed else 0.0,
            mean=stat.mean if completed else 0.0,
        ))
    weighted = [t.throughput / t.share for t in rows if t.share > 0]
    return QosReport(
        policy=plan.policy,
        duration=window,
        tenants=tuple(rows),
        jain=jain_index(t.throughput for t in rows),
        weighted_jain=jain_index(weighted),
        total_offered=sum(t.offered for t in rows),
        total_completed=sum(t.completed for t in rows),
        total_shed=sum(t.shed for t in rows),
        total_errors=sum(t.errors for t in rows),
    )


def _us(v: float) -> str:
    return f"{v * 1e6:.0f}"


def render_qos(report: QosReport, limit: Optional[int] = 16) -> str:
    """The per-tenant SLO table + fairness headlines, print-ready."""
    lines = [
        f"QoS report: policy={report.policy} window={report.duration:g}s "
        f"tenants={len(report.tenants)}",
        f"  offered {report.total_offered}  completed "
        f"{report.total_completed}  shed {report.total_shed}  errors "
        f"{report.total_errors}",
        f"  Jain's index {report.jain:.4f}  (share-weighted "
        f"{report.weighted_jain:.4f})",
        "",
        f"  {'tenant':<16} {'share':>5} {'prio':>4} {'offered':>8} "
        f"{'done':>7} {'shed':>7} {'err':>4} {'req/s':>9} "
        f"{'p50us':>7} {'p95us':>7} {'p99us':>7}",
    ]
    shown = report.tenants if limit is None else report.tenants[:limit]
    for t in shown:
        lines.append(
            f"  {t.name:<16} {t.share:>5g} {t.priority:>4} {t.offered:>8} "
            f"{t.completed:>7} {t.shed:>7} {t.errors:>4} "
            f"{t.throughput:>9.0f} {_us(t.p50):>7} {_us(t.p95):>7} "
            f"{_us(t.p99):>7}"
        )
    hidden = len(report.tenants) - len(shown)
    if hidden > 0:
        lines.append(f"  ... and {hidden} more tenants")
    return "\n".join(lines)
