"""vPHI reproduction: Xeon Phi virtualization for VMs, fully simulated.

Reproduces Gerangelos & Koziris, "vPHI: Enabling Xeon Phi Capabilities in
Virtual Machines" (IPDPS Workshops 2017) as a deterministic full-stack
simulation: Xeon Phi card + uOS, PCIe/DMA, SCIF, virtio, QEMU/KVM and the
vPHI frontend/backend on top.

Quick start::

    from repro import Machine
    m = Machine(cards=1).boot()

See README.md for the architecture tour and DESIGN.md for the
paper-to-module map.
"""

from .faults import FaultKind, FaultPlan, FaultSpec
from .system import Machine

__version__ = "1.0.0"

__all__ = ["FaultKind", "FaultPlan", "FaultSpec", "Machine", "__version__"]
