"""Transparent session recovery: journal + replay across card resets.

Per-request retry (the PR 2 watchdog/backoff machinery) can re-issue an
idempotent op, but it cannot resurrect a *session* whose card-side state
is gone: after a card reset every backend endpoint, registered window
and mmap'd PFN range is stale.  This module is the session-level half of
fault tolerance — the same device-state reconstruction problem SR-IOV VF
management frameworks solve for passthrough NICs, applied to the vPHI
split driver:

* :class:`SessionJournal` — the minimal replayable state, recorded by
  the op registry's journal hooks as lifecycle ops *succeed*: opened
  endpoints, bind/listen/connect topology, registered windows
  (sg, length, offset, prot) and mmap mappings.  Data ops (send/recv,
  RMA, fences, polls) are deliberately **not** journaled: their effects
  live in card memory the reset just destroyed, and replaying them would
  be wrong, not just wasteful.
* :class:`SessionManager` — the per-VM recovery orchestrator.  On a
  ``CARD_RESET`` or ``BACKEND_RESTART`` notification from the backend it
  **fences the old epoch** (every in-flight tag is aborted with a typed
  :class:`~repro.scif.errors.EStaleEpoch`; late completions stamped with
  the old epoch are dropped at drain), applies the configured
  **degraded-mode policy** to new submits (queue / fail-fast /
  circuit-break), and **replays the journal through the normal op path**
  — rebuilding connections, re-registering windows at their journaled
  offsets (the guest's pinned pages survive; only the card-side mapping
  is rebuilt) and re-establishing mmap PFN mappings through the KVM MMU
  (new :class:`~repro.kvm.fault.PfnPhiInfo` + a VMA zap so the next
  guest access faults into the rebuilt window).

Epoch fencing is what makes the replay safe: requests carry the epoch
they were posted in, completions echo it, and the frontend's drain drops
any completion whose epoch predates the current fence — a pre-reset
``register`` completing *after* the rebuild can never smuggle a dead
window into the new session.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

from ..scif.errors import EStaleEpoch, ScifError
from ..sim import WaitQueue
from .protocol import VPhiOp, VPhiResponse

__all__ = [
    "ACTIVE",
    "BROKEN",
    "RECOVERING",
    "EndpointRecord",
    "MmapRecord",
    "SessionJournal",
    "SessionManager",
    "WindowRecord",
]

#: session states
ACTIVE = "active"
RECOVERING = "recovering"
BROKEN = "broken"

#: bounded per-op retries during replay (the card-side peer may still be
#: re-establishing its own listeners/windows when we re-dial).
REPLAY_ATTEMPTS = 3


@dataclass
class WindowRecord:
    """One registered window: everything needed to re-register it.

    The guest's pages stay pinned across the reset (the pin belongs to
    the guest kernel, not the card), so the SG is replayed verbatim and
    the window re-registers at its journaled offset — RAS offsets are
    stable across recovery and in-guest pointers stay valid.
    """

    sg: Any
    nbytes: int
    offset: int
    prot: int


@dataclass
class MmapRecord:
    """One scif_mmap mapping: remote window coords + the guest VMA.

    ``vma``/``space`` are attached by :meth:`SessionManager.attach_vma`
    once the guest shim has built the VMA; replay resolves a fresh
    :class:`~repro.kvm.fault.PfnPhiInfo` against the rebuilt peer window,
    swaps it into ``vma.private`` and zaps the VMA's present pages so the
    next guest access faults through the KVM MMU into the new frames.
    """

    roffset: int
    nbytes: int
    prot: int
    vma: Any = None
    space: Any = None


@dataclass
class EndpointRecord:
    """One guest-visible endpoint and its replayable topology."""

    handle: int
    #: bound port (None = never bound).  Re-bound verbatim on replay so
    #: card-side peers can re-dial the same address.
    port: Optional[int] = None
    #: listen backlog (None = never listened).
    backlog: Optional[int] = None
    #: connected peer address (None = never connected).
    addr: Optional[tuple] = None
    #: registered windows by RAS offset.
    windows: dict = field(default_factory=dict)
    #: mmap mappings, in establishment order.
    mmaps: list = field(default_factory=list)
    #: replay gave up on this endpoint; subsequent ops on its handle
    #: surface typed errors from the backend's (cleared) handle table.
    dead: bool = False
    dead_reason: Optional[ScifError] = None

    @property
    def replay_ops(self) -> int:
        """Ring round-trips a replay of this record costs."""
        if self.dead:
            return 0
        n = 1  # OPEN
        n += self.port is not None
        n += self.backlog is not None
        n += self.addr is not None
        return n + len(self.windows) + len(self.mmaps)


class SessionJournal:
    """The minimal replayable state of one VM's vPHI session.

    Mutated only by the op registry's journal hooks (on op success, with
    the original guest-visible handle) and by the VMA attach/detach
    notifications from the guest shim.  NOT journaled, deliberately:
    accepted endpoints (the card-side dialer must re-dial — the guest
    cannot re-accept on its behalf), in-flight stream data, fence marks
    and poll state (all destroyed with the card, meaningless to replay).
    """

    def __init__(self):
        self.endpoints: dict[int, EndpointRecord] = {}

    # ------------------------------------------------------------------
    # note_* hooks (duck-typed targets of OpSpec.journal)
    # ------------------------------------------------------------------
    def note_open(self, handle: int) -> None:
        self.endpoints[handle] = EndpointRecord(handle=handle)

    def note_close(self, handle: int) -> None:
        self.endpoints.pop(handle, None)

    def note_bind(self, handle: int, port: int) -> None:
        rec = self.endpoints.get(handle)
        if rec is not None:
            rec.port = port

    def note_listen(self, handle: int, backlog: int) -> None:
        rec = self.endpoints.get(handle)
        if rec is not None:
            rec.backlog = backlog

    def note_connect(self, handle: int, addr: tuple) -> None:
        rec = self.endpoints.get(handle)
        if rec is not None:
            rec.addr = tuple(addr)

    def note_register(self, handle: int, sg, nbytes: int, offset: int,
                      prot: int) -> None:
        rec = self.endpoints.get(handle)
        if rec is not None:
            rec.windows[offset] = WindowRecord(
                sg=sg, nbytes=nbytes, offset=offset, prot=prot
            )

    def note_unregister(self, handle: int, offset: int) -> None:
        rec = self.endpoints.get(handle)
        if rec is not None:
            rec.windows.pop(offset, None)

    def note_mmap(self, handle: int, roffset: int, nbytes: int,
                  prot: int) -> None:
        rec = self.endpoints.get(handle)
        if rec is not None:
            rec.mmaps.append(
                MmapRecord(roffset=roffset, nbytes=nbytes, prot=prot)
            )

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Journaled facts (endpoints + topology + windows + mmaps)."""
        return sum(
            1 + (r.port is not None) + (r.backlog is not None)
            + (r.addr is not None) + len(r.windows) + len(r.mmaps)
            for r in self.endpoints.values()
        )

    @property
    def replay_ops(self) -> int:
        """Ring round-trips one full replay costs."""
        return sum(r.replay_ops for r in self.endpoints.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SessionJournal endpoints={len(self.endpoints)} size={self.size}>"


class SessionManager:
    """Per-VM epoch fencing + journal replay, owned by the frontend."""

    def __init__(self, frontend):
        self.frontend = frontend
        self.sim = frontend.sim
        self.vm = frontend.vm
        self.tracer = frontend.tracer
        self.journal = SessionJournal()
        #: the session generation: bumped on every fence; stamped into
        #: every posted request and echoed by every completion.
        self.epoch = 0
        self.state = ACTIVE
        #: original guest handle -> current backend handle (rebuilt by
        #: replay; identity before the first reset).
        self.translation: dict[int, int] = {}
        #: submitters parked by the queue/circuit-break policies (and
        #: stale-epoch retriers) waiting for the rebuild to finish.
        self.rebuilt = WaitQueue(self.sim, name=f"{self.vm.name}-vphi-rebuilt")
        #: reset timestamps inside the circuit-breaker window.
        self._reset_times: deque[float] = deque()
        self._recover_proc = None
        #: metrics (surfaced by repro.analysis.recovery_stats)
        self.resets_seen = 0
        self.recoveries = 0
        self.replayed_ops = 0
        self.replay_failures = 0
        self.stale_drops = 0
        self.aborted_inflight = 0
        self.queued_submits = 0
        self.rejected_submits = 0
        self.rebuild_times: list[float] = []
        #: completed live migrations (cluster layer bumps via resume()).
        self.migrations = 0
        #: guest pages zapped while re-establishing mmaps (EPT refault
        #: volume — the "remap" share of a rebuild or migration).
        self.zapped_pages = 0

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.frontend.config.recovery_enabled

    @property
    def policy(self) -> str:
        return self.frontend.config.recovery_policy

    def translate(self, handle: int) -> int:
        """Map an original guest handle to its current backend handle."""
        return self.translation.get(handle, handle)

    def record(self, spec, handle: int, args: Optional[dict],
               result) -> None:
        """Run ``spec``'s journal hook after a successful submit."""
        if self.enabled and spec.journal is not None:
            spec.journal(self.journal, handle, args or {}, result)

    # ------------------------------------------------------------------
    # VMA bookkeeping (guest shim notifications)
    # ------------------------------------------------------------------
    def attach_vma(self, handle: int, roffset: int, vma, space) -> None:
        """Bind the guest VMA the shim built to its mmap record."""
        if not self.enabled:
            return
        rec = self.journal.endpoints.get(handle)
        if rec is None:
            return
        for mm in rec.mmaps:
            if mm.roffset == roffset and mm.vma is None:
                mm.vma = vma
                mm.space = space
                return

    def detach_vma(self, vma) -> None:
        """Forget a munmap'd VMA (its mapping is no longer replayable)."""
        if not self.enabled:
            return
        for rec in self.journal.endpoints.values():
            rec.mmaps = [mm for mm in rec.mmaps if mm.vma is not vma]

    # ------------------------------------------------------------------
    # submit-side gates
    # ------------------------------------------------------------------
    def gate(self):
        """Process: apply the degraded-mode policy to one submit."""
        if self.state == ACTIVE:
            return
        if self.state == RECOVERING and self.policy == "fail_fast":
            self.rejected_submits += 1
            self.tracer.count("vphi.session.rejected")
            raise EStaleEpoch(
                f"{self.vm.name}: session rebuilding after reset "
                f"(fail-fast recovery policy)"
            )
        if self.state == RECOVERING:
            self.queued_submits += 1
            self.tracer.count("vphi.session.queued")
        t0 = self.sim.now
        yield from self.await_active()
        # degraded-mode submit latency: how long queued submits sat out
        # the rebuild (histogram — the tail is the interesting part).
        self.tracer.observe("vphi.session.gate_wait", self.sim.now - t0)

    def await_active(self):
        """Process: park until the session is ACTIVE (raise if BROKEN)."""
        while self.state == RECOVERING:
            yield self.rebuilt.wait()
        if self.state == BROKEN:
            raise EStaleEpoch(
                f"{self.vm.name}: session circuit open after "
                f"{self.resets_seen} resets"
            )

    # ------------------------------------------------------------------
    # the fence + recovery orchestrator
    # ------------------------------------------------------------------
    def on_backend_invalidated(self, cause: str) -> None:
        """Backend notification (virtio config-change analog): the card
        reset or the backend restarted — every host-side endpoint this
        session held is gone.  Synchronous: fencing must land before the
        backend services anything else."""
        self.resets_seen += 1
        self.tracer.count("vphi.session.invalidated")
        self.tracer.emit("vphi.timeline", "session invalidated",
                         cause=cause, epoch=self.epoch, vm=self.vm.name)
        if not self.enabled:
            return
        self._fence_and_abort(cause)
        if self.state == BROKEN:
            return
        now = self.sim.now
        window = self.frontend.config.recovery_window
        self._reset_times.append(now)
        while self._reset_times and self._reset_times[0] <= now - window:
            self._reset_times.popleft()
        if (self.policy == "circuit_break"
                and len(self._reset_times) > self.frontend.config.recovery_max_resets):
            self.state = BROKEN
            self.tracer.count("vphi.session.circuit_open")
            self.tracer.emit("vphi.timeline", "session circuit opened",
                             resets=self.resets_seen, vm=self.vm.name)
            self.rebuilt.wake_all()
            return
        if self.state != RECOVERING:
            self.state = RECOVERING
            self._recover_proc = self.sim.spawn(
                self._recover(), name=f"{self.vm.name}-vphi-recover"
            )

    def _fence_and_abort(self, cause: str) -> None:
        """Bump the epoch and abort every in-flight tag with EStaleEpoch.

        Every in-flight tag gets a *synthetic* stale response stamped
        with the new epoch — overwriting any pre-reset success already
        parked but unclaimed (its journal hook must never run: the state
        it describes died with the card).  The real (late) completions
        still carry the old epoch and are dropped at drain.
        """
        self.epoch += 1
        fe = self.frontend
        for tag, p in list(fe._inflight.items()):
            fe.responses[tag] = VPhiResponse(
                tag=tag,
                error=EStaleEpoch(
                    f"{self.vm.name}: {p.spec.op_name} fenced by {cause} "
                    f"(epoch {self.epoch})"
                ),
                epoch=self.epoch,
                op=p.req.op,
            )
            self.aborted_inflight += 1
            self.tracer.count("vphi.session.fenced")
        fe.waitq.wake_all(per_waiter_cost=fe.costs.wakeup_per_waiter)

    def _recover(self):
        """Process: settle, then replay the journal until the epoch holds."""
        cfg = self.frontend.config
        t0 = self.sim.now
        while True:
            round_epoch = self.epoch
            yield self.sim.timeout(cfg.recovery_settle)
            try:
                yield from self._replay_all(round_epoch)
            except EStaleEpoch:
                # re-fenced mid-replay: the epoch moved underneath us;
                # start a fresh round against the newest backend state —
                # unless that fence also opened the circuit.
                if self.state == BROKEN:
                    return
                continue
            if self.epoch != round_epoch or self.state == BROKEN:
                if self.state == BROKEN:
                    return
                continue
            break
        self.state = ACTIVE
        self.recoveries += 1
        elapsed = self.sim.now - t0
        self.rebuild_times.append(elapsed)
        self.tracer.count("vphi.session.recovered")
        self.tracer.observe("vphi.session.rebuild_time", elapsed)
        self.tracer.emit("vphi.timeline", "session rebuilt",
                         epoch=self.epoch, replayed=self.replayed_ops,
                         elapsed=elapsed, vm=self.vm.name)
        self.rebuilt.wake_all(per_waiter_cost=self.frontend.costs.wakeup_per_waiter)

    def _replay_all(self, round_epoch: int):
        """Process: replay every live endpoint record, in journal order."""
        for rec in list(self.journal.endpoints.values()):
            if rec.dead:
                continue
            if self.epoch != round_epoch:
                raise EStaleEpoch(
                    f"{self.vm.name}: session fenced mid-replay"
                )
            yield from self._replay_endpoint(rec)

    def _replay_endpoint(self, rec: EndpointRecord):
        """Process: rebuild one endpoint through the normal op path.

        OPEN -> (BIND) -> (LISTEN) -> (CONNECT) -> REGISTER* -> MMAP*,
        exactly the order the topology was established in.  A step that
        keeps failing (the card-side peer never came back) marks the
        record dead: later guest ops on that handle surface typed errors
        from the backend's cleared handle table instead of hanging.
        """
        try:
            new_handle, _ = yield from self._replay_op(VPhiOp.OPEN)
            self.translation[rec.handle] = new_handle
            if rec.port is not None:
                yield from self._replay_op(
                    VPhiOp.BIND, rec.handle, {"port": rec.port}
                )
            if rec.backlog is not None:
                yield from self._replay_op(
                    VPhiOp.LISTEN, rec.handle, {"backlog": rec.backlog}
                )
            if rec.addr is not None:
                yield from self._replay_op(
                    VPhiOp.CONNECT, rec.handle, {"addr": rec.addr}
                )
            for win in list(rec.windows.values()):
                yield from self._replay_op(
                    VPhiOp.REGISTER, rec.handle,
                    {"sg": win.sg, "nbytes": win.nbytes,
                     "offset": win.offset, "prot": win.prot},
                )
            for mm in list(rec.mmaps):
                info, _ = yield from self._replay_op(
                    VPhiOp.MMAP, rec.handle,
                    {"roffset": mm.roffset, "nbytes": mm.nbytes,
                     "prot": mm.prot},
                )
                if mm.vma is not None:
                    # swap the rebuilt frame numbers in and zap the VMA:
                    # the next guest access faults through the KVM MMU
                    # into the re-registered window.
                    mm.vma.private = info
                    self.zapped_pages += self.vm.mmu.zap_vma(mm.space, mm.vma)
        except EStaleEpoch:
            raise
        except ScifError as err:
            rec.dead = True
            rec.dead_reason = err
            self.translation.pop(rec.handle, None)
            self.tracer.count("vphi.session.endpoints_lost")
            self.tracer.emit("vphi.timeline", "endpoint replay abandoned",
                             handle=rec.handle, error=type(err).__name__,
                             vm=self.vm.name)

    # ------------------------------------------------------------------
    # live migration (driven by repro.cluster.migrate.live_migrate)
    # ------------------------------------------------------------------
    #: polling grain while waiting for in-flight tags to drain.
    QUIESCE_POLL = 10e-6

    def begin_migration(self, dest: str) -> None:
        """Stop admitting new work: the session enters RECOVERING.

        New submits park at the degraded-mode gate exactly as they do
        during a reset rebuild (queue policy) — from the guest's point
        of view a migration *is* a very polite card reset.  Requires an
        ACTIVE session; the migration driver awaits one first.
        """
        if not self.enabled:
            raise EStaleEpoch(
                f"{self.vm.name}: live migration needs session recovery "
                "(recovery_policy != 'none') — there is no journal to replay"
            )
        if self.state != ACTIVE:
            raise EStaleEpoch(
                f"{self.vm.name}: cannot migrate a {self.state} session"
            )
        self.state = RECOVERING
        self.tracer.count("vphi.session.migration_started")
        self.tracer.emit("vphi.timeline", "migration started",
                         dest=dest, epoch=self.epoch, vm=self.vm.name)

    def quiesce(self):
        """Process: drain every in-flight tag before the fence.

        With the gate closed no new tags appear; waiting for the last
        outstanding completion means the fence below aborts *nothing* —
        every op submitted before the migration finishes with its real
        result, whatever its idempotency class.  (A reset can't afford
        this courtesy; a planned migration can.)
        """
        fe = self.frontend
        while fe._inflight:
            yield self.sim.timeout(self.QUIESCE_POLL)

    def fence_migration(self, dest: str) -> None:
        """Bump the epoch so any straggler completes as stale."""
        self._fence_and_abort(f"migration to {dest}")

    def rewrite_peers(self, node_map: dict) -> int:
        """Point journaled connect addresses at the destination card.

        SCIF addressing is what makes migration a journal rewrite: the
        card a session talks to is named *only* by the ``(node, port)``
        tuples in its connect records.  Mapping the source card's node
        id to the destination's makes the very same replay machinery
        rebuild the session against the new card.
        """
        rewritten = 0
        for rec in self.journal.endpoints.values():
            if rec.addr is not None and rec.addr[0] in node_map:
                rec.addr = (node_map[rec.addr[0]], rec.addr[1])
                rewritten += 1
        return rewritten

    def replay_journal(self):
        """Process: replay the journal until the epoch holds steady.

        The migration-side twin of :meth:`_recover`'s loop (without the
        settle delay — the destination card is alive and waiting): a
        concurrent reset fencing the epoch mid-replay restarts the
        round; a circuit-break leaves the session BROKEN.
        """
        while True:
            round_epoch = self.epoch
            try:
                yield from self._replay_all(round_epoch)
            except EStaleEpoch:
                if self.state == BROKEN:
                    return
                yield self.sim.timeout(self.frontend.config.recovery_settle)
                continue
            if self.epoch != round_epoch:
                continue
            return

    def resume(self) -> None:
        """Reopen the gate: the session is live on the destination."""
        if self.state == BROKEN:
            return
        self.state = ACTIVE
        self.migrations += 1
        self.tracer.count("vphi.session.migrated")
        self.rebuilt.wake_all(
            per_waiter_cost=self.frontend.costs.wakeup_per_waiter
        )

    def force_broken(self, cause: str) -> None:
        """Evict the session (host failure): fence and open the circuit.

        Unlike a reset there is nothing to rebuild against — in-flight
        tags abort with EStaleEpoch, parked submitters wake into the
        BROKEN error, and every later submit fails typed and fast.
        """
        if not self.enabled:
            return
        self._fence_and_abort(cause)
        self.state = BROKEN
        self.tracer.count("vphi.session.evicted")
        self.tracer.emit("vphi.timeline", "session evicted",
                         cause=cause, vm=self.vm.name)
        self.rebuilt.wake_all()

    def _replay_op(self, op: VPhiOp, handle: int = 0,
                   args: Optional[dict] = None):
        """Process: one replayed op with bounded retries.

        Replay rides the normal submit path (``_submit_one`` with
        ``replay=True``: no policy gate — the recovery process itself is
        what makes the session active again — and no journal hook: the
        journal already holds this fact).  EStaleEpoch propagates (a new
        fence restarts the round); other errors retry a few times spaced
        by the settle delay, because the card-side peer may still be
        re-establishing its listeners and windows.
        """
        fe = self.frontend
        last: Optional[ScifError] = None
        for attempt in range(REPLAY_ATTEMPTS):
            try:
                result, data = yield from fe._submit_one(
                    op, handle, args, replay=True
                )
            except EStaleEpoch:
                raise
            except ScifError as err:
                last = err
                yield self.sim.timeout(fe.config.recovery_settle)
                continue
            self.replayed_ops += 1
            self.tracer.count("vphi.session.replayed")
            return result, data
        self.replay_failures += 1
        self.tracer.count("vphi.session.replay_failures")
        assert last is not None
        raise last

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SessionManager {self.vm.name} state={self.state} "
            f"epoch={self.epoch} journal={self.journal.size}>"
        )
