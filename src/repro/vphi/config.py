"""vPHI configuration: wait scheme, blocking policy, chunking.

The defaults are the paper's implementation choices (§III): interrupt-
based waiting in the frontend; blocking backend handling for every SCIF
operation except ``scif_accept`` (whose completion time is unbounded) and
``poll`` (same reason); 4 MB KMALLOC chunking.  The alternatives — polling
and the **hybrid** scheme the paper lists as future work — are implemented
and selectable for the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..mem import KMALLOC_MAX_SIZE
from .ops import default_nonblocking_ops

__all__ = ["WaitMode", "VPhiConfig"]


class WaitMode:
    """Frontend wait-scheme names."""

    INTERRUPT = "interrupt"
    POLLING = "polling"
    HYBRID = "hybrid"

    ALL = (INTERRUPT, POLLING, HYBRID)


@dataclass
class VPhiConfig:
    """Tunable knobs of one vPHI instance."""

    #: frontend wait scheme (§III design choice; §IV-B blames it for 93 %
    #: of the latency overhead).
    wait_mode: str = WaitMode.INTERRUPT
    #: hybrid threshold: requests moving fewer bytes than this poll,
    #: larger ones sleep (the paper's proposed future work).
    hybrid_threshold: int = 32 * 1024
    #: kmalloc bounce chunk size (the x86_64 KMALLOC_MAX_SIZE).
    chunk_size: int = KMALLOC_MAX_SIZE
    #: ops handled on a QEMU worker thread instead of freezing the VM.
    #: The default is derived from the op registry's blocking classes
    #: (each op declares its class exactly once in :mod:`repro.vphi.ops`).
    nonblocking_ops: frozenset = field(default_factory=default_nonblocking_ops)
    #: EVENT_IDX-style notification suppression: skip kicks while the
    #: backend is draining, coalesce completion interrupts.  Off by
    #: default (the paper's prototype predates it); ablation A7 measures
    #: what it saves.
    suppress_notifications: bool = False

    def __post_init__(self) -> None:
        if self.wait_mode not in WaitMode.ALL:
            raise ValueError(f"unknown wait mode {self.wait_mode!r}")
        if self.chunk_size <= 0 or self.chunk_size > KMALLOC_MAX_SIZE:
            raise ValueError(
                f"chunk_size must be in (0, {KMALLOC_MAX_SIZE}], got {self.chunk_size}"
            )
        if self.hybrid_threshold < 0:
            raise ValueError("hybrid_threshold must be >= 0")

    def is_blocking(self, op) -> bool:
        return op not in self.nonblocking_ops
