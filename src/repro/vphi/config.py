"""vPHI configuration: wait scheme, blocking policy, chunking.

The defaults are the paper's implementation choices (§III): interrupt-
based waiting in the frontend; blocking backend handling for every SCIF
operation except ``scif_accept`` (whose completion time is unbounded) and
``poll`` (same reason); 4 MB KMALLOC chunking.  The alternatives — polling
and the **hybrid** scheme the paper lists as future work — are implemented
and selectable for the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..mem import KMALLOC_MAX_SIZE
from .ops import default_nonblocking_ops

__all__ = ["WaitMode", "VPhiConfig"]


class WaitMode:
    """Frontend wait-scheme names."""

    INTERRUPT = "interrupt"
    POLLING = "polling"
    HYBRID = "hybrid"

    ALL = (INTERRUPT, POLLING, HYBRID)


@dataclass
class VPhiConfig:
    """Tunable knobs of one vPHI instance."""

    #: frontend wait scheme (§III design choice; §IV-B blames it for 93 %
    #: of the latency overhead).
    wait_mode: str = WaitMode.INTERRUPT
    #: hybrid threshold: requests moving fewer bytes than this poll,
    #: larger ones sleep (the paper's proposed future work).
    hybrid_threshold: int = 32 * 1024
    #: kmalloc bounce chunk size (the x86_64 KMALLOC_MAX_SIZE).
    chunk_size: int = KMALLOC_MAX_SIZE
    #: ops handled on a QEMU worker thread instead of freezing the VM.
    #: The default is derived from the op registry's blocking classes
    #: (each op declares its class exactly once in :mod:`repro.vphi.ops`).
    nonblocking_ops: frozenset = field(default_factory=default_nonblocking_ops)
    #: EVENT_IDX-style notification suppression: skip kicks while the
    #: backend is draining, coalesce completion interrupts.  Off by
    #: default (the paper's prototype predates it); ablation A7 measures
    #: what it saves.
    suppress_notifications: bool = False
    #: per-request completion timeout for *blocking-class* ops (their
    #: completion time is bounded, so a stall means something died).
    #: ``None`` disables the watchdog — the default, because the paper's
    #: prototype has none and the Fig 4/5 baselines must stay
    #: byte-identical.  Non-blocking ops (accept/poll/fences) have
    #: unbounded completion time and never get a timeout.
    op_timeout: Optional[float] = None
    #: bounded-retry policy for transient faults on *idempotent* ops
    #: (the op registry declares idempotency; non-idempotent ops always
    #: fail fast with the typed ScifError).
    max_retries: int = 4
    #: exponential backoff: first retry waits ``retry_backoff``, each
    #: further retry doubles it, capped at ``retry_backoff_max``.
    retry_backoff: float = 100e-6
    retry_backoff_max: float = 5e-3
    #: size of the backend's persistent worker pool.  ``0`` (the default)
    #: keeps the paper's dispatch exactly: blocking-class ops freeze the
    #: whole VM in QEMU's event loop, unbounded ops spawn ad-hoc worker
    #: threads — the Fig 4/5 baselines stay byte-identical.  ``> 0``
    #: routes every pool-eligible op (see :attr:`OpSpec.rides_pool`) to
    #: that many persistent workers, so the vCPU keeps running and
    #: completions return out of order by tag.
    backend_workers: int = 0
    #: bound on requests popped off the avail ring but not yet completed
    #: while the pool is active; excess chains stay on the ring until a
    #: completion retires (back-pressure toward the guest).  Ignored in
    #: blocking mode.
    max_inflight: int = 32
    #: session-recovery policy after a card reset / backend restart:
    #:
    #: - ``"none"`` (default): no journal, no replay — the paper's
    #:   behaviour; in-flight ops fail with ENXIO/ESHUTDOWN and the
    #:   session stays broken.  Keeps Fig 4/5 baselines byte-identical.
    #: - ``"queue"``: journal + replay; submits arriving during rebuild
    #:   park until the session is active again.
    #: - ``"fail_fast"``: journal + replay; submits during rebuild fail
    #:   immediately with EStaleEpoch.
    #: - ``"circuit_break"``: like ``queue``, but more than
    #:   ``recovery_max_resets`` resets inside ``recovery_window``
    #:   seconds trips the breaker: the session goes BROKEN and every
    #:   submit fails with EStaleEpoch from then on.
    recovery_policy: str = "none"
    #: circuit-breaker threshold: resets tolerated per window.
    recovery_max_resets: int = 3
    #: circuit-breaker sliding window (simulated seconds).
    recovery_window: float = 1.0
    #: settle delay before replay starts (models reset-detection +
    #: re-enumeration latency; also spaces replay retries while the
    #: card-side peer re-establishes its listeners/windows).
    recovery_settle: float = 1e-3
    #: multi-tenant QoS: this VM's weight under the card arbiter's
    #: ``wfq`` policy — the share of dispatch credits it is entitled to
    #: relative to the other tenants on the card (2.0 gets twice the
    #: credits of 1.0 under contention).  ``0.0`` marks a best-effort
    #: tenant: it is only served when no weighted tenant is waiting.
    #: Ignored by the default ``rr`` policy, so Fig 4/5 and the A8-A11
    #: baselines are untouched.
    qos_share: float = 1.0
    #: strict priority class under the arbiter's ``priority`` policy:
    #: lower numbers are served first (0 = most important); within a
    #: class credits rotate round-robin.  Ignored by ``rr``/``wfq``.
    qos_priority: int = 0
    #: admission control: shed new submits with typed EBUSY once this
    #: many requests are admitted-but-uncompleted in the frontend
    #: (posted, parked on ring space, or queued in the pool).  ``None``
    #: (the default) disables the depth watermark — no admission check
    #: runs and the baselines stay byte-identical.  Shedding stops once
    #: the depth drains below ``admit_resume_depth``.
    admit_queue_depth: Optional[int] = None
    #: admission control: shed new submits while the EWMA of recent
    #: end-to-end request latency exceeds this (seconds).  ``None``
    #: disables the latency watermark.
    admit_latency: Optional[float] = None
    #: hysteresis for the depth watermark: once shedding starts, submits
    #: stay refused until the admitted depth drains to
    #: ``admit_queue_depth * admit_hysteresis`` (avoids admit/shed
    #: flapping at the boundary).
    admit_hysteresis: float = 0.5
    #: EWMA smoothing factor for the latency watermark (weight of the
    #: newest completed request's latency).
    admit_ewma_alpha: float = 0.2
    #: request-lifecycle spans: every submit opens a per-request span
    #: stamped with phase timestamps by the frontend, backend, pool and
    #: session layers (see :data:`repro.vphi.ops.SPAN_PHASE_ORDER`).
    #: Pure bookkeeping — no simulated time is charged, so the Fig 4/5
    #: goldens are byte-identical either way; turn off to shed the
    #: constant per-request overhead on very long soak runs.
    trace_spans: bool = True

    RECOVERY_POLICIES = ("none", "queue", "fail_fast", "circuit_break")

    def __post_init__(self) -> None:
        if self.wait_mode not in WaitMode.ALL:
            raise ValueError(f"unknown wait mode {self.wait_mode!r}")
        if self.chunk_size <= 0 or self.chunk_size > KMALLOC_MAX_SIZE:
            raise ValueError(
                f"chunk_size must be in (0, {KMALLOC_MAX_SIZE}], got {self.chunk_size}"
            )
        if self.hybrid_threshold < 0:
            raise ValueError("hybrid_threshold must be >= 0")
        if self.op_timeout is not None and self.op_timeout <= 0:
            raise ValueError("op_timeout must be positive (or None to disable)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.retry_backoff < 0 or self.retry_backoff_max < self.retry_backoff:
            raise ValueError("need 0 <= retry_backoff <= retry_backoff_max")
        if self.backend_workers < 0:
            raise ValueError("backend_workers must be >= 0 (0 = blocking dispatch)")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.recovery_policy not in self.RECOVERY_POLICIES:
            raise ValueError(
                f"unknown recovery_policy {self.recovery_policy!r} "
                f"(choose from {self.RECOVERY_POLICIES})"
            )
        if self.recovery_max_resets < 1:
            raise ValueError("recovery_max_resets must be >= 1")
        if self.recovery_window <= 0:
            raise ValueError("recovery_window must be positive")
        if self.recovery_settle < 0:
            raise ValueError("recovery_settle must be >= 0")
        if self.qos_share < 0:
            raise ValueError("qos_share must be >= 0 (0 = best-effort)")
        if self.admit_queue_depth is not None and self.admit_queue_depth < 1:
            raise ValueError("admit_queue_depth must be >= 1 (or None)")
        if self.admit_latency is not None and self.admit_latency <= 0:
            raise ValueError("admit_latency must be positive (or None)")
        if not 0.0 <= self.admit_hysteresis <= 1.0:
            raise ValueError("admit_hysteresis must be in [0, 1]")
        if not 0.0 < self.admit_ewma_alpha <= 1.0:
            raise ValueError("admit_ewma_alpha must be in (0, 1]")

    @property
    def pooled(self) -> bool:
        """Whether backend dispatch runs on the worker pool."""
        return self.backend_workers > 0

    @property
    def admission_enabled(self) -> bool:
        """Whether any QoS admission watermark is armed."""
        return self.admit_queue_depth is not None or self.admit_latency is not None

    @property
    def recovery_enabled(self) -> bool:
        """Whether the session journal + replay orchestrator is active."""
        return self.recovery_policy != "none"

    def is_blocking(self, op) -> bool:
        return op not in self.nonblocking_ops

    def timeout_for(self, spec) -> Optional[float]:
        """The completion watchdog for one op, from its blocking class:
        blocking ops get ``op_timeout``; non-blocking (unbounded) ops
        never time out."""
        return self.op_timeout if spec.blocking else None

    def backoff_for(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based), exponentially
        doubled and bounded."""
        return min(self.retry_backoff * (2 ** (attempt - 1)), self.retry_backoff_max)
