"""The vPHI frontend driver: the guest kernel module.

§III: "the driver acts as a 'glue' between virtualization-unaware libscif
and the rest of the stack by forwarding the operations requested to [the]
vPHI backend device through virtio communication channels.  Among its
duties, the frontend driver multiplexes requests and orchestrates the
user space threads or processes that are waiting for a response from the
coprocessor."

Per request it: copies user data into kmalloc'd bounce chunks (the *only*
copies on the whole path, §III/Fig 3 steps 3i/3ii), posts the chunk
references on the virtio ring, kicks the backend, and parks the caller on
the configured wait scheme until the completion interrupt.

Requests are described by the :mod:`~repro.vphi.ops` registry (marshal
rules, trace keys); :meth:`VPhiFrontend.submit_batch` posts several
registry-described requests back-to-back with a single kick, which the
segmented-transfer loop in :meth:`VPhiFrontend.submit` uses to avoid one
vmexit per segment (ablation A8 quantifies the saving).

Fault recovery: every completion goes through :meth:`_complete`, which
arms a per-op watchdog (from the op's blocking class — blocking ops have
bounded completion time, so a stall means the backend worker died) and,
on a transient fault (injected link flap, host ECONNRESET/ENODEV, ring
corruption, card reset, or the watchdog itself), retries *idempotent*
ops with bounded exponential backoff while non-idempotent ops fail fast
with the typed :class:`~repro.scif.ScifError`.  Retries re-post the same
bounce chunks under a fresh tag; abandoned (timed-out) tags are dropped
when their late response eventually drains.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..analysis.calibration import HOST, VPHI_COSTS, HostParams, VPhiCosts
from ..faults import NO_FAULTS, FaultInjector, FaultSite, is_transient
from ..scif.errors import ETIMEDOUT, EStaleEpoch, ScifError
from ..sim import SimError, Simulator, Tracer, WaitQueue
from ..virtio import VirtioDevice
from .chunking import BounceBuffers
from .config import VPhiConfig
from .ops import (
    SPAN_COPY_IN,
    SPAN_COPY_OUT,
    SPAN_GUEST_RETURN,
    SPAN_GUEST_WAKE,
    SPAN_IRQ_DELIVER,
    SPAN_KICK,
    SPAN_MARSHAL,
    SPAN_POST,
    SPAN_RETRY_BACKOFF,
    SPAN_SESSION_WAIT,
    spec_for,
)
from .protocol import VPhiOp, VPhiRequest, VPhiResponse
from .qos import AdmissionController
from .session import ACTIVE, SessionManager
from .wait import make_wait_scheme

__all__ = ["BatchCall", "VPhiFrontend"]


@dataclass
class BatchCall:
    """One registry-described request inside a :meth:`submit_batch`."""

    op: VPhiOp
    handle: int = 0
    args: Optional[dict] = None
    out_data: Optional[np.ndarray] = None
    in_nbytes: int = 0
    #: optional ``consume(offset, view)`` sink for the device->guest
    #: payload — the copy-out streams bounce-chunk views straight to the
    #: consumer instead of gathering a flat array (zero-allocation path
    #: for bulk RMA reads).  ``in_data`` comes back as None when set.
    in_sink: Optional[callable] = None


class _SegmentSinkChain:
    """Compacts a segmented streaming copy-out like the old flat gather.

    Before the streaming datapath, a segmented read concatenated every
    segment's gathered bytes and wrote one contiguous prefix into the
    guest buffer — so a short middle segment (a partial completion on a
    fault/retry path) compacted the following segments down.  Streaming
    sinks write ``(offset, view)`` pairs instead, which would leave a
    hole at the short segment if each segment used its nominal byte
    offset.  The chain keeps the old guest-visible semantics: each
    segment is based at the running total of bytes *actually* streamed
    by its predecessors, not at its nominal offset.
    """

    __slots__ = ("_sink", "_base", "_streamed")

    def __init__(self, sink):
        self._sink = sink
        self._base = 0
        self._streamed = 0

    def segment(self):
        """A per-segment ``consume(offset, view)`` sink.

        Segments finish streaming in submission order (``submit_batch``
        reaps responses in order), so on its first view each segment
        advances the chain base past the bytes its predecessor really
        produced.  A fully-short segment never streams a view and
        therefore contributes nothing to the base.
        """
        started = False

        def consume(off, view):
            nonlocal started
            if not started:
                self._base += self._streamed
                self._streamed = 0
                started = True
            self._sink(self._base + off, view)
            # scatter_to streams a contiguous prefix in offset order,
            # so the last view's end is the segment's actual byte count
            self._streamed = off + len(view)

        return consume


class _Prepared:
    """A marshalled request whose bounce chunks are live in guest memory."""

    __slots__ = ("spec", "req", "hdr_ext", "out_bb", "in_bb",
                 "out_descs", "in_descs", "orig_handle", "span", "in_sink")

    def __init__(self, spec, req, hdr_ext, out_bb, in_bb, out_descs, in_descs,
                 orig_handle=0, span=None, in_sink=None):
        self.spec = spec
        self.req = req
        self.hdr_ext = hdr_ext
        self.out_bb = out_bb
        self.in_bb = in_bb
        self.out_descs = out_descs
        self.in_descs = in_descs
        #: the guest-visible handle as submitted — the session manager
        #: re-translates it to the current backend handle at every post,
        #: so a retry spanning a recovery lands on the rebuilt endpoint.
        self.orig_handle = orig_handle
        #: the request's lifecycle span (None with tracing disabled).
        #: One span covers the whole request across retries — every tag
        #: it was posted under maps back to it in the tracer.
        self.span = span
        #: optional streaming consumer for the in-payload (see BatchCall).
        self.in_sink = in_sink

    @property
    def needed_descriptors(self) -> int:
        return len(self.out_descs) + len(self.in_descs)

    def renew_tag(self, tag: int) -> None:
        """Give the request a fresh correlation id for a retry posting
        (the old tag may still complete late and must not alias)."""
        self.req.tag = tag

    def release(self, kmalloc) -> None:
        if self.hdr_ext is not None and not self.hdr_ext.freed:
            kmalloc.kfree(self.hdr_ext)
        if self.out_bb is not None:
            self.out_bb.free()
        if self.in_bb is not None:
            self.in_bb.free()


class VPhiFrontend:
    """The guest kernel module (insmod'ed into the guest's Linux)."""

    def __init__(
        self,
        vm,
        virtio: VirtioDevice,
        config: Optional[VPhiConfig] = None,
        costs: VPhiCosts = VPHI_COSTS,
        host_params: HostParams = HOST,
        tracer: Optional[Tracer] = None,
        faults: Optional[FaultInjector] = None,
    ):
        self.vm = vm
        self.sim: Simulator = vm.sim
        self.virtio = virtio
        self.config = config or VPhiConfig()
        self.costs = costs
        self.host_params = host_params
        # default to the owning VM's tracer so the frontend and backend
        # share one timeline (two fresh Tracers would each hold half)
        self.tracer = tracer or getattr(vm, "tracer", None) or Tracer()
        self.kmalloc = vm.guest_kernel.kmalloc
        self.waitq = WaitQueue(self.sim, name=f"{vm.name}-vphi-wait")
        #: submitters blocked on descriptor exhaustion (woken on reaping)
        self.ring_space = WaitQueue(self.sim, name=f"{vm.name}-vphi-ringspace")
        self.wait_scheme = make_wait_scheme(
            self.config.wait_mode, self.config.hybrid_threshold, costs
        )
        #: request tags are per-VM (deterministic per run; independent
        #: Simulator instances never share a counter).
        self._tags = itertools.count(1)
        #: completed responses awaiting their caller, by tag.
        self.responses: dict[int, VPhiResponse] = {}
        #: fault source (default: inject nothing).
        self.faults = faults or NO_FAULTS
        #: tags whose caller gave up (watchdog expiry): their late
        #: responses are dropped at drain time instead of parking forever.
        self._abandoned: set[int] = set()
        #: high-water mark of reaped tags — detects (and counts) pooled
        #: out-of-order completion without constraining it.
        self._max_completed_tag = 0
        #: posted-but-unreaped requests by tag — the set a session fence
        #: aborts with synthetic EStaleEpoch responses.
        self._inflight: dict[int, _Prepared] = {}
        #: session journal + recovery orchestrator (inert under the
        #: default ``recovery_policy="none"``).
        self.session = SessionManager(self)
        #: QoS admission gate (inert unless a watermark is configured).
        self.admission = AdmissionController(self)
        virtio.bind_guest_isr(self.irq_handler)
        vm.guest_kernel.vphi_frontend = self
        #: metrics
        self.requests = 0
        self.irqs = 0
        self.retries = 0
        self.timeouts = 0

    # ------------------------------------------------------------------
    # interrupt path
    # ------------------------------------------------------------------
    def irq_handler(self) -> None:
        """The virtual-interrupt ISR: drain the used ring, wake sleepers.

        "the interrupt handler in the guest wakes up all sleeping
        processes, which check the shared ring to determine if the reply
        is for them" (§IV-B).
        """
        self.irqs += 1
        self.drain_used()
        self.waitq.wake_all(per_waiter_cost=self.costs.wakeup_per_waiter)

    def drain_used(self) -> None:
        """Reap completions off the shared ring into the response table."""
        reaped = False
        while True:
            got = self.virtio.ring.get_used()
            if got is None:
                break
            reaped = True
            _head, written, header = got
            resp: VPhiResponse = header
            if resp.epoch < self.session.epoch:
                # pre-fence completion straggling in after a card reset /
                # backend restart: reaping already released its ring
                # descriptors; the record itself must never reach a
                # waiter (the fence handed them synthetic EStaleEpoch
                # responses) or mutate rebuilt session state.
                self._abandoned.discard(resp.tag)
                self.session.stale_drops += 1
                self.tracer.count("vphi.fault.stale_dropped")
                if resp.op is not None:
                    self.tracer.count(spec_for(resp.op).stale_key)
                continue
            if resp.tag in self._abandoned:
                # late completion of a timed-out request: reaping it has
                # already released its ring descriptors; drop the record.
                self._abandoned.discard(resp.tag)
                self.tracer.count("vphi.fault.late_responses")
                continue
            if resp.tag in self.responses:
                raise SimError(
                    f"{self.vm.name}: duplicate completion for tag {resp.tag}"
                )
            if resp.tag < self._max_completed_tag:
                # pooled dispatch retires requests out of submission
                # order; count it (the correlation stays exact by tag).
                self.tracer.count("vphi.completions.out_of_order")
            else:
                self._max_completed_tag = resp.tag
            self.tracer.mark_tag(resp.tag, SPAN_IRQ_DELIVER)
            if resp.pushed_at is not None:
                # completion-push -> ISR-drain gap: the interrupt
                # delivery latency histogram (coalescing + vCPU
                # scheduling spread its tail).
                self.tracer.observe("vphi.irq.delivery_latency",
                                    self.sim.now - resp.pushed_at)
            self.responses[resp.tag] = resp
        if reaped:
            # reaping released descriptors: unblock parked submitters
            self.ring_space.wake_all()

    def claim_response(self, tag: int) -> VPhiResponse:
        """Hand a parked completion to its waiter, exactly once.

        Completion matching is strictly by tag: each wait scheme parks
        until *its* tag lands and claims only that record, so pooled
        out-of-order completions can never reach the wrong caller.
        Claiming a tag with no parked response is a driver bug, not a
        recoverable condition.
        """
        try:
            return self.responses.pop(tag)
        except KeyError:
            raise SimError(
                f"{self.vm.name}: claimed tag {tag} has no parked response"
            ) from None

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def submit(
        self,
        op: VPhiOp,
        handle: int = 0,
        args: Optional[dict] = None,
        out_data: Optional[np.ndarray] = None,
        in_nbytes: int = 0,
        segment_args=None,
        in_sink=None,
    ):
        """Process: forward one SCIF operation to the backend.

        Returns ``(result, in_data)`` where ``in_data`` is the gathered
        device->guest payload (or None).  Raises the host-side ScifError
        if the operation failed.

        With a QoS watermark configured, admission happens here — once
        per guest-visible request, before any marshalling or descriptor
        allocation — and an overloaded frontend raises typed
        :class:`~repro.scif.errors.EBUSY` instead of queuing.  The
        segmented path below re-enters :meth:`submit_batch` internally
        and must not (and does not) admit each segment again.

        Transfers whose bounce chunks would not fit the descriptor ring
        are split into sequential ring submissions (the real driver does
        the same when a request exceeds the ring) — posted as one batch
        so the whole sequence shares kicks instead of paying one vmexit
        per segment.  ``segment_args(args, byte_offset)`` rewrites the
        op-specific arguments for each segment (RMA offsets advance).
        """
        adm = self.admission
        if not adm.enabled:
            result = yield from self._do_submit(
                op, handle, args, out_data, in_nbytes, segment_args, in_sink
            )
            return result
        adm.admit(spec_for(op))
        t0 = self.sim.now
        try:
            result = yield from self._do_submit(
                op, handle, args, out_data, in_nbytes, segment_args, in_sink
            )
            return result
        finally:
            adm.finish(self.sim.now - t0)

    def _do_submit(
        self,
        op: VPhiOp,
        handle: int = 0,
        args: Optional[dict] = None,
        out_data: Optional[np.ndarray] = None,
        in_nbytes: int = 0,
        segment_args=None,
        in_sink=None,
    ):
        """The already-admitted body of :meth:`submit` (segmentation +
        single-chain dispatch)."""
        max_data_descs = self.virtio.ring.size // 2
        max_segment = max_data_descs * self.config.chunk_size
        total = len(out_data) if out_data is not None else in_nbytes
        if total > max_segment:
            sink_chain = None if in_sink is None else _SegmentSinkChain(in_sink)
            calls = []
            off = 0
            while off < total:
                take = min(max_segment, total - off)
                calls.append(BatchCall(
                    op=op,
                    handle=handle,
                    args=segment_args(args, off) if segment_args else args,
                    out_data=(out_data[off : off + take]
                              if out_data is not None else None),
                    in_nbytes=take if in_nbytes else 0,
                    in_sink=(None if sink_chain is None
                             else sink_chain.segment()),
                ))
                off += take
            pairs = yield from self._do_submit_batch(calls)
            results = [r for r, _ in pairs]
            gathered = [d for _, d in pairs if d is not None]
            agg = sum(r for r in results if isinstance(r, (int, float)))
            in_data = np.concatenate(gathered) if gathered else None
            return agg, in_data
        result, data = yield from self._submit_one(
            op, handle, args, out_data, in_nbytes, in_sink=in_sink
        )
        return result, data

    def submit_batch(self, calls: Sequence[BatchCall]):
        """Process: forward several requests with coalesced kicks.

        Each call's chain is marshalled and posted back-to-back; the
        backend is kicked once per posting window (exactly once when the
        whole batch fits the descriptor ring) instead of once per
        request, then every response is reaped in submission order.

        With a QoS watermark configured a direct batch is admitted as
        ``len(calls)`` guest-visible requests, atomically: either the
        whole batch is admitted or the whole batch sheds with one typed
        :class:`~repro.scif.errors.EBUSY` (per-op shed counters charge
        the first call's op).  Segmented :meth:`submit` calls bypass
        this gate — their one admission already happened at the top.

        Returns ``[(result, in_data), ...]`` aligned with ``calls``.  If
        any request failed, the first host-side error is raised — but
        only after every response has been reaped, so no bounce chunk is
        freed while the backend may still write it.
        """
        calls = list(calls)
        if not calls:
            return []
        adm = self.admission
        if not adm.enabled:
            out = yield from self._do_submit_batch(calls)
            return out
        adm.admit(spec_for(calls[0].op), n=len(calls))
        t0 = self.sim.now
        try:
            out = yield from self._do_submit_batch(calls)
            return out
        finally:
            adm.finish(self.sim.now - t0, n=len(calls))

    def _do_submit_batch(self, calls: list):
        """The already-admitted body of :meth:`submit_batch`."""
        t0_batch = self.sim.now
        acc = self.tracer.accumulate
        prepared: list[_Prepared] = []
        try:
            # post every chain, kicking only when the ring runs out of
            # room (the parked-for-space path needs the backend running
            # to make progress) and once at the end for the remainder.
            unkicked: list[_Prepared] = []
            for call in calls:
                p = yield from self._prepare(
                    call.op, call.handle, call.args, call.out_data,
                    call.in_nbytes, in_sink=call.in_sink,
                )
                prepared.append(p)
                if self.virtio.ring.num_free < p.needed_descriptors and unkicked:
                    yield from self._kick(unkicked)
                    unkicked = []
                yield from self._post_chain(p)
                unkicked.append(p)
            if unkicked:
                yield from self._kick(unkicked)
            # reap in submission order; out-of-order completions park in
            # the response table until their turn.
            out: list[tuple] = []
            first_error: Optional[Exception] = None
            for p in prepared:
                try:
                    resp = yield from self._complete(p)
                except ScifError as err:
                    if first_error is None:
                        first_error = err
                    out.append((None, None))
                    continue
                result, in_data = yield from self._finish(p, resp)
                self.session.record(p.spec, p.orig_handle, p.req.args, result)
                out.append((result, in_data))
                self.tracer.observe(p.spec.latency_key, self.sim.now - t0_batch)
            if first_error is not None:
                # requests that did complete keep their "ok" spans even
                # though the batch as a whole raises (the failed ones
                # were closed with their real status by _complete).
                for p in prepared:
                    self.tracer.end_span(p.span, "ok")
                raise first_error
            # one response demux + syscall return for the whole batch
            yield self.sim.timeout(self.costs.guest_return)
            acc("vphi.phase.guest_return", self.costs.guest_return)
            for p in prepared:
                self.tracer.mark(p.span, SPAN_GUEST_RETURN)
                self.tracer.end_span(p.span, "ok")
            return out
        finally:
            for p in prepared:
                p.release(self.kmalloc)
                # any span still open here died on an exception path
                # that never reached a completion (prepare faults,
                # duplicate-tag SimErrors, ...): close it so no span
                # ever leaks in the active table.
                self.tracer.end_span(p.span, "error")

    def _submit_one(
        self,
        op: VPhiOp,
        handle: int = 0,
        args: Optional[dict] = None,
        out_data: Optional[np.ndarray] = None,
        in_nbytes: int = 0,
        replay: bool = False,
        in_sink=None,
    ):
        """One ring submission (at most ring-size/2 data descriptors).

        ``replay`` marks a session-recovery replay: it bypasses the
        degraded-mode submit gate (the recovery process is itself what
        makes the session active again) and skips the journal hook (the
        journal already holds the fact being replayed).
        """
        t0_req = self.sim.now
        acc = self.tracer.accumulate
        p = yield from self._prepare(op, handle, args, out_data, in_nbytes,
                                     in_sink=in_sink)
        try:
            yield from self._post_chain(p, replay=replay)
            yield from self._kick([p])
            resp = yield from self._complete(p, replay=replay)
            result, in_data = yield from self._finish(p, resp)
            if not replay:
                self.session.record(p.spec, p.orig_handle, p.req.args, result)
            # response demux + syscall return to user space
            yield self.sim.timeout(self.costs.guest_return)
            acc("vphi.phase.guest_return", self.costs.guest_return)
            self.tracer.observe(p.spec.latency_key, self.sim.now - t0_req)
            self.tracer.mark(p.span, SPAN_GUEST_RETURN)
            self.tracer.end_span(p.span, "ok")
            return result, in_data
        finally:
            p.release(self.kmalloc)
            # idempotent close: a no-op on the normal path, the span's
            # last line of defence on any exception path _complete did
            # not already classify.
            self.tracer.end_span(p.span, "error")

    # ------------------------------------------------------------------
    # the four stages every submission goes through
    # ------------------------------------------------------------------
    def _prepare(
        self,
        op: VPhiOp,
        handle: int,
        args: Optional[dict],
        out_data: Optional[np.ndarray],
        in_nbytes: int,
        in_sink=None,
    ):
        """Marshal one request: header + bounce chunks + user->kernel copy."""
        spec = spec_for(op)
        self.requests += 1
        acc = self.tracer.accumulate
        # the request's lifecycle span opens here, before any simulated
        # work, so the marshal phase covers the whole guest-kernel entry.
        # It is bound to a tag only at _post_chain (tags are allocated
        # last, and retries re-bind fresh ones).
        span = (spec.begin_span(self.tracer, vm=self.vm.name)
                if self.config.trace_spans else None)
        # frontend-side fault draw: link flaps trigger by op index / name /
        # VM / time window and stall the shared PCIe medium while it
        # retrains (the request itself proceeds and rides out the stall).
        inj = self.faults.draw(FaultSite.FRONTEND_SUBMIT,
                               op=spec.op_name, vm=self.vm.name)
        if inj is not None:
            self.tracer.count("vphi.fault.injected")
            self.tracer.count(spec.injected_key)
            self.tracer.emit("vphi.faults", "link flap injected",
                             kind=inj.kind, op=spec.op_name, vm=self.vm.name)
        # 3b/3c: request marshalling in the guest kernel
        yield self.sim.timeout(self.costs.frontend)
        acc("vphi.phase.frontend", self.costs.frontend)
        self.tracer.mark(span, SPAN_MARSHAL)
        out_bb: Optional[BounceBuffers] = None
        in_bb: Optional[BounceBuffers] = None
        # the serialized request header always rides as the first out
        # descriptor (even control-only requests put one buffer on the ring)
        hdr_ext = self.kmalloc.kmalloc(256, label="vphi-hdr")
        try:
            out_descs: list[tuple[int, int]] = [(hdr_ext.addr, 256)]
            in_descs: list[tuple[int, int]] = []
            if out_data is not None and len(out_data):
                out_bb = BounceBuffers(
                    self.kmalloc, len(out_data), self.config.chunk_size
                )
                # 3i: the user->kernel copy
                copy_t = len(out_data) / self.host_params.memcpy_bandwidth
                yield self.sim.timeout(copy_t)
                acc("vphi.phase.copy", copy_t)
                self.tracer.mark(span, SPAN_COPY_IN)
                out_bb.scatter(out_data)
                out_descs.extend(out_bb.descriptors())
            if in_nbytes:
                in_bb = BounceBuffers(self.kmalloc, in_nbytes, self.config.chunk_size)
                in_descs = in_bb.descriptors()
        except Exception:
            self.kmalloc.kfree(hdr_ext)
            if out_bb is not None:
                out_bb.free()
            raise
        req = VPhiRequest(
            op=op,
            handle=handle,
            args=dict(args or {}),
            out_nbytes=0 if out_data is None else len(out_data),
            in_nbytes=in_nbytes,
            tag=next(self._tags),
        )
        return _Prepared(spec, req, hdr_ext, out_bb, in_bb, out_descs, in_descs,
                         orig_handle=handle, span=span, in_sink=in_sink)

    def _post_chain(self, p: _Prepared, replay: bool = False):
        """Put one prepared chain on the ring, parking on exhaustion.

        Back-pressure: park until the ring has room for the chain (the
        real driver sleeps on virtqueue_add failure too).  With session
        recovery armed, every post (first or retry) is stamped with the
        *current* epoch and handle translation at the instant it lands
        on the ring — a retry spanning a recovery must not post the dead
        epoch or a pre-reset backend handle — and posts arriving while
        the session rebuilds go through the degraded-mode gate (replay
        posts are exempt: recovery is what unblocks the gate).
        """
        if p.needed_descriptors > self.virtio.ring.size:
            raise SimError(
                f"{self.vm.name}: chain of {p.needed_descriptors} descriptors "
                f"can never fit a ring of {self.virtio.ring.size}"
            )
        ses = self.session
        while True:
            if ses.enabled and not replay and ses.state != ACTIVE:
                yield from ses.gate()
                # a gated submit attributes the rebuild wait to its own
                # phase instead of folding it into the post.
                self.tracer.mark(p.span, SPAN_SESSION_WAIT)
            if self.virtio.ring.num_free >= p.needed_descriptors:
                break
            yield self.ring_space.wait()
        if ses.enabled:
            p.req.epoch = ses.epoch
            if p.spec.wants_endpoint:
                p.req.handle = ses.translate(p.orig_handle)
        self._inflight[p.req.tag] = p
        self.virtio.ring.add_chain(out=p.out_descs, inb=p.in_descs, header=p.req)
        self.tracer.count(p.spec.counter_key)
        self.tracer.bind_span(p.req.tag, p.span)
        self.tracer.mark(p.span, SPAN_POST)
        self.tracer.emit("vphi.timeline", "request posted to ring",
                         tag=p.req.tag, op=p.spec.op_name, phase=p.spec.phase)

    def _kick(self, group: list[_Prepared]):
        """Notify the backend once for every chain posted since the last
        kick (3c: one vmexit, however many requests it covers)."""
        t0 = self.sim.now
        yield from self.virtio.kick()
        self.tracer.accumulate("vphi.phase.kick", self.sim.now - t0)
        for p in group:
            self.tracer.mark(p.span, SPAN_KICK)
            self.tracer.emit("vphi.timeline", "backend kicked (vmexit)",
                             tag=p.req.tag, op=p.spec.op_name, phase=p.spec.phase)

    def _reap(self, p: _Prepared, deadline: Optional[float] = None):
        """Park on the configured wait scheme until p's response lands.

        Returns ``None`` if ``deadline`` (absolute simulated time) passes
        first — the caller's recovery watchdog.
        """
        data_bytes = max(p.req.out_nbytes, p.req.in_nbytes)
        t0 = self.sim.now
        resp: Optional[VPhiResponse] = yield from self.wait_scheme.wait_for(
            self, p.req.tag, data_bytes, deadline
        )
        # time parked waiting = backend + host op + irq + wakeup; the
        # wakeup share is accumulated separately by the wait scheme.
        self.tracer.accumulate("vphi.phase.wait", self.sim.now - t0)
        if resp is not None:
            self.tracer.mark(p.span, SPAN_GUEST_WAKE)
            self.tracer.emit("vphi.timeline", "response reaped after wakeup",
                             tag=p.req.tag, op=p.spec.op_name, phase=p.spec.phase)
        return resp

    def _complete(self, p: _Prepared, replay: bool = False):
        """Reap ``p``'s response, recovering from transient faults.

        The watchdog deadline comes from the op's blocking class via
        :meth:`VPhiConfig.timeout_for` (blocking ops have bounded
        completion time; a stall means the backend worker died).  On a
        transient fault — injected ECONNRESET/ENODEV, ring corruption,
        card reset, or watchdog expiry — *idempotent* ops re-post the
        same bounce chunks under a fresh tag after bounded exponential
        backoff; non-idempotent ops fail fast with the typed error.

        An :class:`EStaleEpoch` abort (the session fenced this tag) is
        session-level, not request-level: under the queue/circuit-break
        policies an idempotent op parks until the journal replay
        finishes, then re-posts at the new epoch without consuming its
        transient-retry budget.  During replay (``replay=True``) the
        stale error propagates instead — a fresh fence must restart the
        replay round, not deadlock it against the recovery process.
        """
        spec, cfg = p.spec, self.config
        attempt = 0
        while True:
            timeout = cfg.timeout_for(spec)
            deadline = None if timeout is None else self.sim.now + timeout
            resp = yield from self._reap(p, deadline)
            self._inflight.pop(p.req.tag, None)
            if resp is None:
                # watchdog expiry: abandon the tag so the late response
                # (if the backend ever completes it) is dropped on drain.
                # The tag leaves the active-span table with it — a late
                # completion must never stamp this span again.
                self.timeouts += 1
                self._abandoned.add(p.req.tag)
                self.tracer.unbind_span(p.req.tag)
                self.tracer.count("vphi.fault.timeouts")
                err: Exception = ETIMEDOUT(
                    f"{self.vm.name}: {spec.op_name} gave no completion "
                    f"within {timeout:g}s (tag {p.req.tag})"
                )
            elif resp.error is not None:
                err = resp.error
            else:
                if attempt:
                    self.tracer.count(spec.recovered_key)
                    self.tracer.count("vphi.fault.recovered")
                    self.tracer.emit("vphi.timeline", "request recovered after retry",
                                     tag=p.req.tag, op=spec.op_name, attempts=attempt)
                return resp
            if isinstance(err, EStaleEpoch):
                ses = self.session
                if (not replay and ses.enabled and spec.idempotent
                        and cfg.recovery_policy in ("queue", "circuit_break")):
                    attempt += 1
                    self.retries += 1
                    self.tracer.count(spec.retried_key)
                    self.tracer.count("vphi.fault.retried")
                    self.tracer.emit("vphi.timeline",
                                     "stale epoch, awaiting session rebuild",
                                     tag=p.req.tag, op=spec.op_name,
                                     epoch=ses.epoch)
                    yield from ses.await_active()  # raises if circuit opens
                    self.tracer.mark(p.span, SPAN_SESSION_WAIT)
                    p.renew_tag(next(self._tags))
                    yield from self._post_chain(p, replay=replay)
                    yield from self._kick([p])
                    continue
                if not replay:
                    self.tracer.count(spec.failed_key)
                    self.tracer.count("vphi.fault.failed")
                self.tracer.end_span(p.span, "stale")
                raise err
            if not (spec.idempotent and is_transient(err)
                    and attempt < cfg.max_retries):
                if is_transient(err):
                    self.tracer.count(spec.failed_key)
                    self.tracer.count("vphi.fault.failed")
                self.tracer.end_span(p.span,
                                     "timeout" if resp is None else "error")
                raise err
            # bounded exponential backoff, then re-post under a fresh tag
            attempt += 1
            self.retries += 1
            self.tracer.count(spec.retried_key)
            self.tracer.count("vphi.fault.retried")
            self.tracer.emit("vphi.timeline", "transient fault, retrying",
                             tag=p.req.tag, op=spec.op_name, attempt=attempt,
                             error=type(err).__name__)
            yield self.sim.timeout(cfg.backoff_for(attempt))
            self.tracer.mark(p.span, SPAN_RETRY_BACKOFF)
            p.renew_tag(next(self._tags))
            yield from self._post_chain(p, replay=replay)
            yield from self._kick([p])

    def _finish(self, p: _Prepared, resp: VPhiResponse):
        """Gather the device->guest payload (3ii: the kernel->user copy)."""
        in_data = None
        if p.in_bb is not None and resp.written:
            copy_t = resp.written / self.host_params.memcpy_bandwidth
            yield self.sim.timeout(copy_t)
            self.tracer.accumulate("vphi.phase.copy", copy_t)
            self.tracer.mark(p.span, SPAN_COPY_OUT)
            if p.in_sink is not None:
                # stream bounce-chunk views straight to the consumer —
                # the bulk-RMA copy-out never materializes a flat array
                p.in_bb.scatter_to(p.in_sink, resp.written)
            else:
                in_data = p.in_bb.gather(resp.written)
        return resp.result, in_data

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<VPhiFrontend {self.vm.name} scheme={self.wait_scheme.name} "
            f"reqs={self.requests}>"
        )
