"""The vPHI frontend driver: the guest kernel module.

§III: "the driver acts as a 'glue' between virtualization-unaware libscif
and the rest of the stack by forwarding the operations requested to [the]
vPHI backend device through virtio communication channels.  Among its
duties, the frontend driver multiplexes requests and orchestrates the
user space threads or processes that are waiting for a response from the
coprocessor."

Per request it: copies user data into kmalloc'd bounce chunks (the *only*
copies on the whole path, §III/Fig 3 steps 3i/3ii), posts the chunk
references on the virtio ring, kicks the backend, and parks the caller on
the configured wait scheme until the completion interrupt.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..analysis.calibration import HOST, VPHI_COSTS, HostParams, VPhiCosts
from ..sim import Simulator, Tracer, WaitQueue
from ..virtio import VirtioDevice
from .chunking import BounceBuffers
from .config import VPhiConfig
from .protocol import VPhiOp, VPhiRequest, VPhiResponse
from .wait import make_wait_scheme

__all__ = ["VPhiFrontend"]


class VPhiFrontend:
    """The guest kernel module (insmod'ed into the guest's Linux)."""

    def __init__(
        self,
        vm,
        virtio: VirtioDevice,
        config: Optional[VPhiConfig] = None,
        costs: VPhiCosts = VPHI_COSTS,
        host_params: HostParams = HOST,
        tracer: Optional[Tracer] = None,
    ):
        self.vm = vm
        self.sim: Simulator = vm.sim
        self.virtio = virtio
        self.config = config or VPhiConfig()
        self.costs = costs
        self.host_params = host_params
        self.tracer = tracer or Tracer()
        self.kmalloc = vm.guest_kernel.kmalloc
        self.waitq = WaitQueue(self.sim, name=f"{vm.name}-vphi-wait")
        #: submitters blocked on descriptor exhaustion (woken on reaping)
        self.ring_space = WaitQueue(self.sim, name=f"{vm.name}-vphi-ringspace")
        self.wait_scheme = make_wait_scheme(
            self.config.wait_mode, self.config.hybrid_threshold, costs
        )
        #: completed responses awaiting their caller, by tag.
        self.responses: dict[int, VPhiResponse] = {}
        virtio.bind_guest_isr(self.irq_handler)
        vm.guest_kernel.vphi_frontend = self
        #: metrics
        self.requests = 0
        self.irqs = 0

    # ------------------------------------------------------------------
    # interrupt path
    # ------------------------------------------------------------------
    def irq_handler(self) -> None:
        """The virtual-interrupt ISR: drain the used ring, wake sleepers.

        "the interrupt handler in the guest wakes up all sleeping
        processes, which check the shared ring to determine if the reply
        is for them" (§IV-B).
        """
        self.irqs += 1
        self.drain_used()
        self.waitq.wake_all(per_waiter_cost=self.costs.wakeup_per_waiter)

    def drain_used(self) -> None:
        """Reap completions off the shared ring into the response table."""
        reaped = False
        while True:
            got = self.virtio.ring.get_used()
            if got is None:
                break
            reaped = True
            _head, written, header = got
            resp: VPhiResponse = header
            self.responses[resp.tag] = resp
        if reaped:
            # reaping released descriptors: unblock parked submitters
            self.ring_space.wake_all()

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def submit(
        self,
        op: VPhiOp,
        handle: int = 0,
        args: Optional[dict] = None,
        out_data: Optional[np.ndarray] = None,
        in_nbytes: int = 0,
        segment_args=None,
    ):
        """Process: forward one SCIF operation to the backend.

        Returns ``(result, in_data)`` where ``in_data`` is the gathered
        device->guest payload (or None).  Raises the host-side ScifError
        if the operation failed.

        Transfers whose bounce chunks would not fit the descriptor ring
        are split into sequential ring submissions (each paying its own
        round trip — the real driver does the same when a request exceeds
        the ring).  ``segment_args(args, byte_offset)`` rewrites the
        op-specific arguments for each segment (RMA offsets advance).
        """
        max_data_descs = self.virtio.ring.size // 2
        max_segment = max_data_descs * self.config.chunk_size
        total = len(out_data) if out_data is not None else in_nbytes
        if total > max_segment:
            results = []
            gathered = []
            off = 0
            while off < total:
                take = min(max_segment, total - off)
                seg_args = segment_args(args, off) if segment_args else args
                seg_out = out_data[off : off + take] if out_data is not None else None
                seg_in = take if in_nbytes else 0
                result, data = yield from self._submit_one(
                    op, handle, seg_args, seg_out, seg_in
                )
                results.append(result)
                if data is not None:
                    gathered.append(data)
                off += take
            agg = sum(r for r in results if isinstance(r, (int, float)))
            in_data = np.concatenate(gathered) if gathered else None
            return agg, in_data
        result, data = yield from self._submit_one(op, handle, args, out_data, in_nbytes)
        return result, data

    def _submit_one(
        self,
        op: VPhiOp,
        handle: int = 0,
        args: Optional[dict] = None,
        out_data: Optional[np.ndarray] = None,
        in_nbytes: int = 0,
    ):
        """One ring submission (at most ring-size/2 data descriptors)."""
        self.requests += 1
        acc = self.tracer.accumulate
        # 3b/3c: request marshalling in the guest kernel
        yield self.sim.timeout(self.costs.frontend)
        acc("vphi.phase.frontend", self.costs.frontend)
        out_bb: Optional[BounceBuffers] = None
        in_bb: Optional[BounceBuffers] = None
        # the serialized request header always rides as the first out
        # descriptor (even control-only requests put one buffer on the ring)
        hdr_ext = self.kmalloc.kmalloc(256, label="vphi-hdr")
        try:
            out_descs: list[tuple[int, int]] = [(hdr_ext.addr, 256)]
            in_descs: list[tuple[int, int]] = []
            if out_data is not None and len(out_data):
                out_bb = BounceBuffers(
                    self.kmalloc, len(out_data), self.config.chunk_size
                )
                # 3i: the user->kernel copy
                copy_t = len(out_data) / self.host_params.memcpy_bandwidth
                yield self.sim.timeout(copy_t)
                acc("vphi.phase.copy", copy_t)
                out_bb.scatter(out_data)
                out_descs.extend(out_bb.descriptors())
            if in_nbytes:
                in_bb = BounceBuffers(self.kmalloc, in_nbytes, self.config.chunk_size)
                in_descs = in_bb.descriptors()
            req = VPhiRequest(
                op=op,
                handle=handle,
                args=dict(args or {}),
                out_nbytes=0 if out_data is None else len(out_data),
                in_nbytes=in_nbytes,
            )
            # back-pressure: park until the ring has room for the chain
            # (the real driver sleeps on virtqueue_add failure too)
            needed = len(out_descs) + len(in_descs)
            while self.virtio.ring.num_free < needed:
                yield self.ring_space.wait()
            self.virtio.ring.add_chain(out=out_descs, inb=in_descs, header=req)
            self.tracer.count(f"vphi.op.{op.value}")
            self.tracer.emit("vphi.timeline", "request posted to ring",
                             tag=req.tag, op=op.value)
            # 3c: notify the backend (vmexit)
            t0 = self.sim.now
            yield from self.virtio.kick()
            acc("vphi.phase.kick", self.sim.now - t0)
            self.tracer.emit("vphi.timeline", "backend kicked (vmexit)",
                             tag=req.tag, op=op.value)
            data_bytes = max(req.out_nbytes, req.in_nbytes)
            t0 = self.sim.now
            resp: VPhiResponse = yield from self.wait_scheme.wait_for(
                self, req.tag, data_bytes
            )
            # time parked waiting = backend + host op + irq + wakeup; the
            # wakeup share is accumulated separately by the wait scheme.
            acc("vphi.phase.wait", self.sim.now - t0)
            self.tracer.emit("vphi.timeline", "response reaped after wakeup",
                             tag=req.tag, op=op.value)
            if resp.error is not None:
                raise resp.error
            in_data = None
            if in_bb is not None and resp.written:
                # 3ii: the kernel->user copy
                copy_t = resp.written / self.host_params.memcpy_bandwidth
                yield self.sim.timeout(copy_t)
                acc("vphi.phase.copy", copy_t)
                in_data = in_bb.gather(resp.written)
            # response demux + syscall return to user space
            yield self.sim.timeout(self.costs.guest_return)
            acc("vphi.phase.guest_return", self.costs.guest_return)
            return resp.result, in_data
        finally:
            self.kmalloc.kfree(hdr_ext)
            if out_bb is not None:
                out_bb.free()
            if in_bb is not None:
                in_bb.free()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<VPhiFrontend {self.vm.name} scheme={self.wait_scheme.name} "
            f"reqs={self.requests}>"
        )
