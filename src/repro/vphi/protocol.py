"""The vPHI wire protocol: requests and responses crossing the virtio ring.

One request per intercepted SCIF system call (§III, Fig 3 step 3c).  The
header is a small fixed record; bulk data never rides the header — it is
referenced by guest-physical descriptors (the kmalloc bounce chunks), so
"every other data exchange is realized through references".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["VPhiOp", "VPhiRequest", "VPhiResponse"]


class VPhiOp(enum.Enum):
    """SCIF operations forwarded through the ring."""

    OPEN = "open"
    CLOSE = "close"
    BIND = "bind"
    LISTEN = "listen"
    CONNECT = "connect"
    ACCEPT = "accept"
    SEND = "send"
    RECV = "recv"
    REGISTER = "register"
    UNREGISTER = "unregister"
    READFROM = "readfrom"
    WRITETO = "writeto"
    VREADFROM = "vreadfrom"
    VWRITETO = "vwriteto"
    MMAP = "mmap"
    FENCE_MARK = "fence_mark"
    FENCE_WAIT = "fence_wait"
    FENCE_SIGNAL = "fence_signal"
    GET_NODE_IDS = "get_node_ids"
    POLL = "poll"
    SYSFS_READ = "sysfs_read"


@dataclass(slots=True)
class VPhiRequest:
    """Ring request header."""

    op: VPhiOp
    #: backend endpoint handle (0 for OPEN / non-endpoint ops).
    handle: int = 0
    #: op-specific scalar arguments.
    args: dict = field(default_factory=dict)
    #: byte counts of the out (guest->host) and in (host->guest) chunk
    #: descriptors accompanying the header.
    out_nbytes: int = 0
    in_nbytes: int = 0
    #: request/response correlation id.  Allocated by the *frontend* (one
    #: counter per VM) so tags are deterministic per run and never leak
    #: across Simulator instances or test orderings.
    tag: int = 0
    #: session epoch the request was posted in.  Bumped by the frontend's
    #: session manager on every card reset / backend restart; completions
    #: carrying an older epoch are dropped at drain instead of being
    #: allowed to mutate rebuilt session state.  0 = the initial epoch
    #: (fault-free runs never see anything else).
    epoch: int = 0


@dataclass(slots=True)
class VPhiResponse:
    """Ring response, matched to the request by tag."""

    tag: int
    result: Any = None
    #: a ScifError instance when the host-side call failed.
    error: Optional[Exception] = None
    #: bytes the backend wrote into the in chunks.
    written: int = 0
    #: echo of the request's session epoch (stale-completion fencing).
    epoch: int = 0
    #: echo of the request's op (lets the frontend attribute dropped
    #: stale completions to the right per-op counter).
    op: Optional[VPhiOp] = None
    #: simulated time the backend pushed this completion onto the used
    #: ring (None for synthetic responses, e.g. session fences).  The
    #: frontend's drain observes ``now - pushed_at`` as the
    #: interrupt-delivery latency histogram — the gap notification
    #: coalescing and vCPU scheduling insert between completion and ISR.
    pushed_at: Optional[float] = None
