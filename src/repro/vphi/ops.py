"""The SCIF operation registry: one declaration per forwarded operation.

The vPHI datapath (§III, Fig 3) forwards ~20 SCIF operations guest ->
frontend -> virtio ring -> backend -> host driver.  Everything the stack
needs to know about one operation is declared *here*, exactly once, as an
:class:`OpSpec`:

* **marshal rules** — which scalar arguments ride the request header
  (:class:`ArgSpec`: name, default, wire conversion) and whether the op
  carries an out (guest->host) or in (host->guest) bulk payload;
* the **backend handler** — a small generator closing over the backend's
  :class:`~repro.scif.NativeScif` that replays the call against the host
  driver and returns ``(result, bytes_written)``;
* the **blocking class** — whether QEMU services the request inline
  (freezing the VM) or on a worker thread (ops with unbounded completion
  time: accept/poll/fences);
* the **pool eligibility** — whether the backend's persistent worker
  pool (``VPhiConfig.backend_workers``) may service the op.  Defaults
  derive from the blocking class: bounded (blocking-class) ops ride the
  pool, unbounded ones keep a dedicated worker thread so a parked
  accept/poll can never starve the pool's shards;
* the **idempotency class** — whether replaying the op after a transient
  fault is observably identical to running it once.  The frontend's
  recovery machinery retries idempotent ops (bounded exponential
  backoff) and fails non-idempotent ones fast with the typed ScifError;
* the **trace phase label** and the derived per-op counter/latency keys
  the frontend, backend and :mod:`repro.analysis.breakdown` share;
* optional **cost hooks** — fixed simulated time charged host-side before
  and after the handler (syscall entry, completion message).

Every consumer derives its behaviour from the registry: the guest shim
marshals generically, the backend dispatches by table lookup, the config
computes its default non-blocking set, and the analysis layer enumerates
per-op metrics without string literals.  Adding an operation (e.g. a COI
extension) is one :func:`register` call.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional

from ..scif import ScifError
from .protocol import VPhiOp

__all__ = [
    "REQUIRED",
    "ArgSpec",
    "BLOCKING",
    "NONBLOCKING",
    "OpSpec",
    "SPAN_BACKEND_POP",
    "SPAN_COMPLETION_PUSH",
    "SPAN_COPY_IN",
    "SPAN_COPY_OUT",
    "SPAN_CREDIT_WAIT",
    "SPAN_GUEST_RETURN",
    "SPAN_GUEST_WAKE",
    "SPAN_HOST_CALL",
    "SPAN_IRQ_DELIVER",
    "SPAN_KICK",
    "SPAN_MARSHAL",
    "SPAN_PHASE_ORDER",
    "SPAN_POST",
    "SPAN_RETRY_BACKOFF",
    "SPAN_RING",
    "SPAN_SESSION_WAIT",
    "default_nonblocking_ops",
    "register",
    "registered_ops",
    "spec_for",
    "temporary_op",
]

# ----------------------------------------------------------------------
# request-lifecycle span phases (Fig 3 steps, as stamped on each
# request's Span).  Declared here — next to the op declarations — so the
# frontend, blocking backend, pool members and session replay all stamp
# the *same* vocabulary; every phase label in the stack resolves to one
# of these constants.
# ----------------------------------------------------------------------
#: guest kernel marshalled the request header (3b).
SPAN_MARSHAL = "marshal"
#: user->kernel copy into the kmalloc bounce chunks (3i).
SPAN_COPY_IN = "copy_in"
#: descriptor chain landed on the avail ring (includes any time parked
#: on ring-space exhaustion or the degraded-session gate).
SPAN_POST = "post"
#: backend notified — the vmexit (3c; shared by a whole batch).
SPAN_KICK = "kick"
#: ring residency: posted chain waited for the backend to take it up
#: (event-loop dispatch latency, or pool shard queueing when pooled).
SPAN_RING = "ring"
#: pooled only: member waited for a machine-wide dispatch credit.
SPAN_CREDIT_WAIT = "credit_wait"
#: backend mapped the guest buffers and dispatched (pop + setup).
SPAN_BACKEND_POP = "backend_pop"
#: the host SCIF syscall itself (handler + its pre/post cost hooks).
SPAN_HOST_CALL = "host_call"
#: completion record pushed onto the used ring.
SPAN_COMPLETION_PUSH = "completion_push"
#: virtual interrupt delivered and the guest ISR drained the completion.
SPAN_IRQ_DELIVER = "irq_deliver"
#: the parked caller woke and claimed its response (wait-scheme exit).
SPAN_GUEST_WAKE = "guest_wake"
#: kernel->user copy out of the bounce chunks (3ii).
SPAN_COPY_OUT = "copy_out"
#: response demux + syscall return to user space.
SPAN_GUEST_RETURN = "guest_return"
#: recovery only: exponential backoff before a transient-fault retry.
SPAN_RETRY_BACKOFF = "retry_backoff"
#: recovery only: parked on the session rebuild after an epoch fence.
SPAN_SESSION_WAIT = "session_wait"

#: canonical rendering/sort order for all phases (recovery phases sort
#: where they occur: between a completion and the re-post).
SPAN_PHASE_ORDER = (
    SPAN_MARSHAL, SPAN_COPY_IN, SPAN_POST, SPAN_KICK, SPAN_RING,
    SPAN_CREDIT_WAIT, SPAN_BACKEND_POP, SPAN_HOST_CALL,
    SPAN_COMPLETION_PUSH, SPAN_IRQ_DELIVER, SPAN_GUEST_WAKE,
    SPAN_RETRY_BACKOFF, SPAN_SESSION_WAIT, SPAN_COPY_OUT,
    SPAN_GUEST_RETURN,
)


class _Required:
    """Sentinel: the argument has no default and must be supplied."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<REQUIRED>"


REQUIRED = _Required()

#: blocking classes (§III, *Blocking vs non-blocking mode*)
BLOCKING = "blocking"
NONBLOCKING = "nonblocking"


@dataclass(frozen=True)
class ArgSpec:
    """One scalar argument riding the request header."""

    name: str
    default: Any = REQUIRED
    #: wire conversion applied while marshalling (e.g. ``int`` flattens
    #: IntFlag values, ``tuple`` freezes address pairs).  ``None`` values
    #: pass through unconverted (optional arguments).
    convert: Optional[Callable[[Any], Any]] = None


@dataclass(frozen=True)
class OpSpec:
    """Everything the stack knows about one forwarded SCIF operation."""

    op: Any  # VPhiOp member (or any op-like object with a .value name)
    handler: Callable  # generator: (backend, req, elem, args) -> (result, written)
    args: tuple[ArgSpec, ...] = ()
    blocking_class: str = BLOCKING
    #: replaying the op after a transient fault is indistinguishable from
    #: running it once (reads, window RMA to explicit offsets, pure
    #: queries).  Drives the frontend's retry-vs-fail-fast decision.
    idempotent: bool = False
    #: trace phase label (timeline annotations; defaults to the wire name).
    phase: str = ""
    #: the op references an existing backend endpoint via ``req.handle``.
    wants_endpoint: bool = True
    #: op may carry a guest->host bulk payload (out descriptors).
    carries_out: bool = False
    #: op may carry a host->guest bulk payload (in descriptors).
    carries_in: bool = False
    #: fixed host-side simulated seconds charged before/after the handler
    #: (syscall entry + driver dispatch, completion message, ...).
    #: Preferred form: a tuple of cost-table attribute names (e.g.
    #: ``("syscall", "driver")``) resolved once against the backend's
    #: ``lib.costs`` into a plain float — this is what feeds the
    #: backend's vectorized per-op cost tables.  A callable
    #: ``(backend, req) -> float`` stays supported as the escape hatch
    #: for genuinely dynamic costs.
    pre_cost: Optional[Callable | tuple] = None
    post_cost: Optional[Callable | tuple] = None
    #: whether the backend's worker pool may service this op.  ``None``
    #: (the default) derives from the blocking class — see :attr:`rides_pool`.
    pool_eligible: Optional[bool] = None
    #: the op mutates session topology the recovery orchestrator must
    #: rebuild after a card reset (endpoint lifecycle, window
    #: registration, mmap).  Purely informational for data ops.
    replayable: bool = False
    #: journal hook ``(journal, handle, args, result)`` invoked by the
    #: frontend after the op *succeeds*; ``handle`` is the original
    #: guest-visible handle (pre-translation), ``args`` the marshalled
    #: wire arguments and ``result`` the op result.  The hook records
    #: the minimal replayable state on the session journal (duck-typed
    #: ``note_*`` methods — no import cycle with the session module).
    journal: Optional[Callable] = None

    # ------------------------------------------------------------------
    # derived trace keys: the single source the frontend, backend and
    # analysis layers share (no string literals anywhere else).  All are
    # interned once at registration time (``__post_init__``) — the hot
    # path charges per-op counters on every request, so key derivation
    # must be an attribute load, not an f-string per call.
    # ------------------------------------------------------------------
    #: wire name (``op.value``).
    op_name: str = ""
    #: frontend: requests submitted.
    counter_key: str = ""
    #: backend: requests completed (including errors).
    served_key: str = ""
    #: backend: requests that returned a ScifError.
    error_key: str = ""
    #: frontend: per-request ring round-trip latency stat.
    latency_key: str = ""
    #: faults injected while this op was in flight.
    injected_key: str = ""
    #: frontend: retry attempts after a transient fault.
    retried_key: str = ""
    #: frontend: requests that ultimately succeeded after >=1 retry.
    recovered_key: str = ""
    #: frontend: transient faults surfaced to the caller (fail-fast
    #: non-idempotent ops, or retries exhausted).
    failed_key: str = ""
    #: backend: requests serviced by the worker pool.
    pooled_key: str = ""
    #: frontend: completions dropped because their epoch predated a
    #: session fence (card reset / backend restart).
    stale_key: str = ""
    #: frontend: submits refused by QoS admission control (typed EBUSY
    #: before any descriptor was allocated).
    shed_key: str = ""
    #: backend handling completes in bounded time (``blocking_class``).
    blocking: bool = True
    #: effective pool eligibility: the explicit flag, else derived from
    #: the blocking class.  Bounded-completion (blocking-class) ops ride
    #: the pool; unbounded ones (accept/poll/fences) keep their dedicated
    #: worker thread — a parked accept occupying a pool shard would
    #: starve every op hashed to the same shard.
    rides_pool: bool = True
    #: the fault-free phase sequence this op's spans stamp, derived from
    #: the declaration: payload directions add the copy phases, pool
    #: eligibility adds the credit wait (skipped on blocking dispatch — a
    #: run stamps a *subsequence* of this, in this order; only the
    #: recovery phases may repeat out of it).
    span_phases: tuple[str, ...] = ()

    def __post_init__(self):
        # frozen dataclass: derived state goes in through the back door,
        # exactly once, at registration time.
        _set = object.__setattr__
        name = self.op.value
        base = f"vphi.op.{name}"
        _set(self, "op_name", name)
        _set(self, "counter_key", base)
        _set(self, "served_key", base + ".served")
        _set(self, "error_key", base + ".errors")
        _set(self, "latency_key", base + ".latency")
        _set(self, "injected_key", base + ".injected")
        _set(self, "retried_key", base + ".retried")
        _set(self, "recovered_key", base + ".recovered")
        _set(self, "failed_key", base + ".failed")
        _set(self, "pooled_key", base + ".pooled")
        _set(self, "stale_key", base + ".stale_dropped")
        _set(self, "shed_key", base + ".shed")
        blocking = self.blocking_class == BLOCKING
        _set(self, "blocking", blocking)
        _set(self, "rides_pool",
             blocking if self.pool_eligible is None else self.pool_eligible)
        phases = [SPAN_MARSHAL]
        if self.carries_out:
            phases.append(SPAN_COPY_IN)
        phases += [SPAN_POST, SPAN_KICK, SPAN_RING]
        if self.rides_pool:
            phases.append(SPAN_CREDIT_WAIT)
        phases += [SPAN_BACKEND_POP, SPAN_HOST_CALL, SPAN_COMPLETION_PUSH,
                   SPAN_IRQ_DELIVER, SPAN_GUEST_WAKE]
        if self.carries_in:
            phases.append(SPAN_COPY_OUT)
        phases.append(SPAN_GUEST_RETURN)
        _set(self, "span_phases", tuple(phases))
        _set(self, "marshal", _compile_marshal(name, self.args))

    # ------------------------------------------------------------------
    # span hooks: every layer opens/stamps request-lifecycle spans
    # through the spec, so the phase vocabulary and the per-op phase
    # sequence are declared exactly once (here).
    # ------------------------------------------------------------------
    def begin_span(self, tracer, vm: str = ""):
        """Open this op's request-lifecycle span (None when the tracer
        has spans disabled)."""
        return tracer.new_span(self.op_name, vm=vm)

    # ------------------------------------------------------------------
    #: compiled marshal plan — ``marshal(call_args) -> dict`` builds the
    #: request's scalar-argument dict from a guest call, applying
    #: defaults and wire conversions (unknown or missing arguments are
    #: programming errors and raise ScifError).  Compiled once per spec
    #: by :func:`_compile_marshal` at registration time; the per-call
    #: cost is one closure invocation, not a walk of the ArgSpecs.
    marshal: Callable[[dict], dict] = None  # type: ignore[assignment]


def _compile_marshal(op_name: str, args: tuple[ArgSpec, ...]) -> Callable:
    """Build the per-op marshal closure.

    The plan is resolved at registry-build time: the known-name set, the
    (name, default, convert) triples and the no-argument fast path are
    all baked into the closure, so a hot-path ``marshal()`` does no spec
    introspection at all.
    """
    if not args:
        def marshal_empty(call_args: dict, _name=op_name) -> dict:
            if call_args:
                raise ScifError(
                    f"vphi op {_name!r}: unexpected argument(s) "
                    f"{sorted(call_args)}"
                )
            return {}

        return marshal_empty

    plan = tuple((a.name, a.default, a.convert) for a in args)
    known = frozenset(a.name for a in args)

    def marshal(call_args: dict, _name=op_name, _plan=plan,
                _known=known, _missing=REQUIRED) -> dict:
        if not _known.issuperset(call_args):
            raise ScifError(
                f"vphi op {_name!r}: unexpected argument(s) "
                f"{sorted(set(call_args) - _known)}"
            )
        wire = {}
        for name, default, convert in _plan:
            value = call_args.get(name, default)
            if value is _missing:
                raise ScifError(
                    f"vphi op {_name!r}: missing argument {name!r}"
                )
            if convert is not None and value is not None:
                value = convert(value)
            wire[name] = value
        return wire

    return marshal


#: the registry: op -> spec.  Keyed by the op object itself so test-only
#: operations (any hashable with a ``.value`` wire name) register the
#: same way the built-in :class:`VPhiOp` members do.
_REGISTRY: dict[Any, OpSpec] = {}


def register(
    op: Any,
    *,
    args: tuple[ArgSpec, ...] = (),
    blocking_class: str = BLOCKING,
    idempotent: bool = False,
    phase: str = "",
    wants_endpoint: bool = True,
    carries_out: bool = False,
    carries_in: bool = False,
    pre_cost: Optional[Callable | tuple] = None,
    post_cost: Optional[Callable | tuple] = None,
    pool_eligible: Optional[bool] = None,
    replayable: bool = False,
    journal: Optional[Callable] = None,
) -> Callable:
    """Decorator: register ``op``'s backend handler plus its declaration.

    The decorated function is a generator ``(backend, req, elem, args)``
    returning ``(result, written)``; it runs inside the QEMU backend, so
    ``backend.lib`` is the host-side :class:`~repro.scif.NativeScif`.
    """
    if blocking_class not in (BLOCKING, NONBLOCKING):
        raise ValueError(f"unknown blocking class {blocking_class!r}")

    def wrap(handler: Callable) -> Callable:
        if op in _REGISTRY:
            raise ValueError(f"vphi op {op!r} registered twice")
        _REGISTRY[op] = OpSpec(
            op=op,
            handler=handler,
            args=tuple(args),
            blocking_class=blocking_class,
            idempotent=idempotent,
            phase=phase or op.value,
            wants_endpoint=wants_endpoint,
            carries_out=carries_out,
            carries_in=carries_in,
            pre_cost=pre_cost,
            post_cost=post_cost,
            pool_eligible=pool_eligible,
            replayable=replayable,
            journal=journal,
        )
        return handler

    return wrap


def spec_for(op: Any) -> OpSpec:
    """The registered spec for ``op`` (ScifError on unknown ops)."""
    try:
        return _REGISTRY[op]
    except KeyError:
        raise ScifError(f"vphi: unknown op {op!r}") from None


def registered_ops() -> tuple[OpSpec, ...]:
    """All registered specs, in registration order."""
    return tuple(_REGISTRY.values())


def default_nonblocking_ops() -> frozenset:
    """Ops whose backend handling must not freeze the VM indefinitely —
    derived from the registry's blocking classes (consumed by
    :class:`~repro.vphi.config.VPhiConfig`)."""
    return frozenset(s.op for s in _REGISTRY.values() if not s.blocking)


@contextlib.contextmanager
def temporary_op(op: Any, handler: Callable, **kwargs) -> Iterator[OpSpec]:
    """Register ``op`` with ``handler`` for the ``with`` body, then remove
    it — the one-registration-site seam the unit tests exercise."""
    register(op, **kwargs)(handler)
    try:
        yield _REGISTRY[op]
    finally:
        _REGISTRY.pop(op, None)


# ======================================================================
# cost keys shared by the RMA family: one host ioctl pays syscall entry
# + driver dispatch up front and one completion message at the end.
# Declarative (resolved against the backend's ``lib.costs`` once, into
# its vectorized per-op cost tables) rather than callables invoked per
# request.
# ======================================================================
RMA_PRE_COST = ("syscall", "driver")
RMA_POST_COST = ("completion",)


# ======================================================================
# session-journal hooks: called by the frontend after the op succeeds,
# with the *original* guest-visible handle (never a translated one) —
# the journal is the minimal replayable state the recovery orchestrator
# re-drives through the normal op path after a card reset.  Duck-typed
# against SessionJournal's note_* methods so ops.py never imports the
# session module (no cycle).
# ======================================================================
def _journal_open(journal, handle, args, result):
    journal.note_open(result)


def _journal_close(journal, handle, args, result):
    journal.note_close(handle)


def _journal_bind(journal, handle, args, result):
    journal.note_bind(handle, result)  # result = the actual bound port


def _journal_listen(journal, handle, args, result):
    journal.note_listen(handle, args["backlog"])


def _journal_connect(journal, handle, args, result):
    journal.note_connect(handle, tuple(args["addr"]))


def _journal_register(journal, handle, args, result):
    journal.note_register(
        handle, args["sg"], args["nbytes"], result, args["prot"]
    )  # result = the actual registered offset


def _journal_unregister(journal, handle, args, result):
    journal.note_unregister(handle, args["offset"])


def _journal_mmap(journal, handle, args, result):
    journal.note_mmap(handle, args["roffset"], args["nbytes"], args["prot"])


# ======================================================================
# the built-in SCIF operation set (§III, Fig 3): every op exactly once.
# ======================================================================
@register(VPhiOp.OPEN, wants_endpoint=False, idempotent=True,
          replayable=True, journal=_journal_open)
def _open(backend, req, elem, a):
    ep = yield from backend.lib.open()
    return backend.new_handle(ep), 0


@register(VPhiOp.CLOSE, replayable=True, journal=_journal_close)
def _close(backend, req, elem, a):
    ep = backend.endpoint(req.handle)
    yield from backend.lib.close(ep)
    backend.drop_handle(req.handle)
    return 0, 0


@register(VPhiOp.BIND, args=(ArgSpec("port", default=0, convert=int),),
          replayable=True, journal=_journal_bind)
def _bind(backend, req, elem, a):
    port = yield from backend.lib.bind(backend.endpoint(req.handle), a["port"])
    return port, 0


@register(VPhiOp.LISTEN, args=(ArgSpec("backlog", default=16, convert=int),),
          idempotent=True, replayable=True, journal=_journal_listen)
def _listen(backend, req, elem, a):
    yield from backend.lib.listen(backend.endpoint(req.handle), a["backlog"])
    return 0, 0


@register(VPhiOp.CONNECT, args=(ArgSpec("addr", convert=tuple),),
          replayable=True, journal=_journal_connect)
def _connect(backend, req, elem, a):
    port = yield from backend.lib.connect(
        backend.endpoint(req.handle), tuple(a["addr"])
    )
    return port, 0


@register(
    VPhiOp.ACCEPT,
    args=(ArgSpec("block", default=True, convert=bool),),
    blocking_class=NONBLOCKING,  # completion time unbounded (§III)
)
def _accept(backend, req, elem, a):
    conn, peer = yield from backend.lib.accept(
        backend.endpoint(req.handle), block=a["block"]
    )
    return (backend.new_handle(conn), peer), 0


@register(
    VPhiOp.SEND,
    args=(ArgSpec("flags", default=1, convert=int),),
    carries_out=True,
)
def _send(backend, req, elem, a):
    from ..scif import SendFlag

    payload = backend.out_payload(elem)
    n = yield from backend.lib.send(
        backend.endpoint(req.handle), payload, SendFlag(a["flags"])
    )
    return n, 0


@register(
    VPhiOp.RECV,
    args=(
        ArgSpec("nbytes", convert=int),
        ArgSpec("flags", default=1, convert=int),
    ),
    carries_in=True,
)
def _recv(backend, req, elem, a):
    from ..scif import RecvFlag

    data = yield from backend.lib.recv(
        backend.endpoint(req.handle), a["nbytes"], RecvFlag(a["flags"])
    )
    written = backend.scatter_in(elem, data)
    return len(data), written


@register(
    VPhiOp.REGISTER,
    args=(
        ArgSpec("sg"),
        ArgSpec("nbytes", convert=int),
        ArgSpec("offset", default=None),
        ArgSpec("prot", default=3, convert=int),
    ),
    replayable=True,
    journal=_journal_register,
)
def _register_window(backend, req, elem, a):
    from ..scif import Prot

    # the guest pinned its pages; their SG rides the request
    offset = yield from backend.lib.register_sg(
        backend.endpoint(req.handle),
        a["sg"],
        a["nbytes"],
        offset=a["offset"],
        prot=Prot(a["prot"]),
        label=f"{backend.vm.name}-guest-window",
    )
    return offset, 0


@register(VPhiOp.UNREGISTER, args=(ArgSpec("offset", convert=int),),
          replayable=True, journal=_journal_unregister)
def _unregister_window(backend, req, elem, a):
    yield from backend.lib.unregister(backend.endpoint(req.handle), a["offset"])
    return 0, 0


_RMA_ARGS = (
    ArgSpec("loffset", convert=int),
    ArgSpec("nbytes", convert=int),
    ArgSpec("roffset", convert=int),
    ArgSpec("flags", default=0, convert=int),
)


@register(VPhiOp.READFROM, args=_RMA_ARGS, idempotent=True,
          pre_cost=RMA_PRE_COST, post_cost=RMA_POST_COST)
def _readfrom(backend, req, elem, a):
    # window-to-window: both sides pinned, DMA direct (no bounce)
    n = yield from backend.window_rma(req, "read")
    return n, 0


@register(VPhiOp.WRITETO, args=_RMA_ARGS, idempotent=True,
          pre_cost=RMA_PRE_COST, post_cost=RMA_POST_COST)
def _writeto(backend, req, elem, a):
    n = yield from backend.window_rma(req, "write")
    return n, 0


_VRMA_ARGS = (
    ArgSpec("roffset", convert=int),
    ArgSpec("flags", default=0, convert=int),
)


@register(VPhiOp.VREADFROM, args=_VRMA_ARGS, carries_in=True, idempotent=True,
          pre_cost=RMA_PRE_COST, post_cost=RMA_POST_COST)
def _vreadfrom(backend, req, elem, a):
    n = yield from backend.chunked_rma(req, elem, "read")
    return n, n


@register(VPhiOp.VWRITETO, args=_VRMA_ARGS, carries_out=True, idempotent=True,
          pre_cost=RMA_PRE_COST, post_cost=RMA_POST_COST)
def _vwriteto(backend, req, elem, a):
    n = yield from backend.chunked_rma(req, elem, "write")
    return n, 0


@register(
    VPhiOp.MMAP,
    args=(
        ArgSpec("roffset", convert=int),
        ArgSpec("nbytes", convert=int),
        ArgSpec("prot", default=3, convert=int),
    ),
    idempotent=True,
    replayable=True,
    journal=_journal_mmap,
)
def _mmap(backend, req, elem, a):
    from ..kvm.fault import PfnPhiInfo
    from ..scif import Prot

    ep = backend.endpoint(req.handle)
    if ep.peer is None:
        raise ScifError("mmap on unconnected endpoint")
    sg = ep.peer.windows.resolve(a["roffset"], a["nbytes"], Prot(a["prot"]))
    yield backend.sim.timeout(backend.costs.backend)
    # the "<15 LOC host SCIF driver" half: hand the frame numbers back so
    # the guest VMA can be tagged VM_PFNPHI.
    return PfnPhiInfo(sg), 0


@register(VPhiOp.FENCE_MARK)
def _fence_mark(backend, req, elem, a):
    mark = yield from backend.lib.fence_mark(backend.endpoint(req.handle))
    return mark, 0


@register(
    VPhiOp.FENCE_WAIT,
    args=(ArgSpec("mark", convert=int),),
    blocking_class=NONBLOCKING,  # waits for DMA completion: unbounded
    idempotent=True,
)
def _fence_wait(backend, req, elem, a):
    yield from backend.lib.fence_wait(backend.endpoint(req.handle), a["mark"])
    return 0, 0


@register(
    VPhiOp.FENCE_SIGNAL,
    args=(
        ArgSpec("loffset"),
        ArgSpec("lval", convert=int),
        ArgSpec("roffset"),
        ArgSpec("rval", convert=int),
    ),
    blocking_class=NONBLOCKING,
)
def _fence_signal(backend, req, elem, a):
    yield from backend.lib.fence_signal(
        backend.endpoint(req.handle), a["loffset"], a["lval"],
        a["roffset"], a["rval"],
    )
    return 0, 0


@register(VPhiOp.GET_NODE_IDS, wants_endpoint=False, idempotent=True)
def _get_node_ids(backend, req, elem, a):
    ids = yield from backend.lib.get_node_ids()
    return ids, 0


@register(
    VPhiOp.POLL,
    args=(
        ArgSpec("mask", convert=int),
        ArgSpec("timeout", default=None),
    ),
    blocking_class=NONBLOCKING,  # completion time unbounded (§III)
    idempotent=True,
)
def _poll(backend, req, elem, a):
    from ..scif import PollEvent

    revents = yield from backend.lib.poll(
        [(backend.endpoint(req.handle), PollEvent(a["mask"]))],
        timeout=a["timeout"],
    )
    return int(revents[0]), 0


@register(VPhiOp.SYSFS_READ, args=(ArgSpec("path", convert=str),),
          wants_endpoint=False, idempotent=True)
def _sysfs_read(backend, req, elem, a):
    yield backend.sim.timeout(0)
    return backend.host_kernel.sysfs.read(a["path"]), 0
