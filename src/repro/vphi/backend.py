"""The vPHI backend device: a virtual PCI device inside QEMU.

§III: "the backend is notified by the frontend when a new request has
been pushed to the virtio ring.  Then, the backend checks the shared ring
and maps the buffer to its address space avoiding again any copies ...
Afterwards, the backend performs the relevant system call to the host
SCIF driver and waits for the result.  When the system call returns, it
pushes the result in the shared ring and notifies the guest via a virtual
interrupt."

Each VM's backend is a distinct QEMU host process holding its own
``libscif`` context — "from the host driver's perspective, multiple VMs
issuing SCIF requests are essentially multiple host processes", which is
precisely what enables Xeon Phi sharing.

Per-operation semantics live in the :mod:`~repro.vphi.ops` registry; the
backend is a table-driven executor: look the spec up, charge its cost
hooks, run its handler against the host :class:`~repro.scif.NativeScif`.

Dispatch runs in one of two modes.  **Blocking** (the default, the
paper's implementation): blocking-class ops are handled inline on QEMU's
event loop with the whole VM paused; unbounded ops spawn ad-hoc worker
threads.  **Pooled** (``VPhiConfig(backend_workers=N)``): every
pool-eligible op is handed to a persistent :class:`~repro.vphi.pool.WorkerPool`
member instead, the vCPU keeps running, and at most
``VPhiConfig.max_inflight`` popped requests are in flight — excess
chains wait on the avail ring.
"""

from __future__ import annotations

import itertools
from typing import Optional

import numpy as np

from ..analysis.calibration import VPHI_COSTS, VPhiCosts
from ..faults import ENODEV, NO_FAULTS, FaultInjector, FaultKind, FaultSite, Injection
from ..scif import Endpoint, NativeScif, Prot, RmaFlag, ScifError
from ..scif.endpoint import EpState
from ..scif.errors import EBADF, ECONNREFUSED, ENXIO, ESHUTDOWN
from ..sim import Event, Tracer
from ..virtio import VirtioDevice, VirtqueueElement
from .config import VPhiConfig
from .ops import (
    SPAN_BACKEND_POP,
    SPAN_COMPLETION_PUSH,
    SPAN_HOST_CALL,
    SPAN_RING,
    OpSpec,
    registered_ops,
    spec_for,
)
from .pool import CardArbiter, WorkerPool
from .protocol import VPhiRequest, VPhiResponse

__all__ = ["VPhiBackend"]


class VPhiBackend:
    """QEMU extension servicing one VM's vPHI traffic."""

    def __init__(
        self,
        vm,
        virtio: VirtioDevice,
        lib: NativeScif,
        host_kernel,
        config: Optional[VPhiConfig] = None,
        costs: VPhiCosts = VPHI_COSTS,
        tracer: Optional[Tracer] = None,
        faults: Optional[FaultInjector] = None,
        arbiter: Optional[CardArbiter] = None,
        device=None,
    ):
        self.vm = vm
        self.sim = vm.sim
        self.virtio = virtio
        self.lib = lib
        self.host_kernel = host_kernel
        self.config = config or VPhiConfig()
        self.costs = costs
        #: the card this backend dispatches against; its power model
        #: (when opted in) scales the fixed cost hooks with frequency.
        self.device = device
        self._power = getattr(device, "power", None)
        # default to the owning VM's tracer so frontend + backend share
        # one timeline (a fresh Tracer here would silently drop half of it)
        self.tracer = tracer or getattr(vm, "tracer", None) or Tracer()
        self.endpoints: dict[int, Endpoint] = {}
        self._handles = itertools.count(1)
        #: fault source (default: inject nothing).
        self.faults = faults or NO_FAULTS
        virtio.bind_backend(self.on_kick)
        #: requests currently being handled (drives the busy flag that
        #: notification suppression keys off).
        self.in_flight = 0
        #: metrics
        self.requests_served = 0
        self.errors_returned = 0
        self.endpoint_reopens = 0
        #: per-handle re-open gates: one driver-death outage triggers one
        #: re-open even when several pooled workers hit ENODEV at once.
        self._reopening: dict[int, Event] = {}
        #: the frontend session manager's invalidation callback (the
        #: virtio config-change analog), wired by setup.  Called with a
        #: cause string whenever a card reset / backend restart destroys
        #: every host endpoint this backend held.
        self.session_listener = None
        #: metrics
        self.card_resets = 0
        self.backend_restarts = 0
        #: the worker pool (None in the paper's blocking dispatch mode).
        self.pool: Optional[WorkerPool] = None
        if self.config.pooled:
            arbiter = arbiter or CardArbiter(
                self.sim, slots=self.config.backend_workers
            )
            self.pool = WorkerPool(
                self, self.config.backend_workers, arbiter, costs=self.costs
            )
        self._build_cost_tables()

    # ------------------------------------------------------------------
    # vectorized per-op cost tables
    # ------------------------------------------------------------------
    def _build_cost_tables(self) -> None:
        """Resolve every registered op's declarative cost keys against
        this backend's host-cost model, once.

        Declarative ``pre_cost``/``post_cost`` tuples (cost-table
        attribute names) become plain floats in ``_fixed_pre``/
        ``_fixed_post`` and rows of the numpy cost vectors the batched
        drain uses for aggregate accounting.  Callable hooks stay
        unresolved (dynamic escape hatch) and are invoked per request as
        before; ops registered after construction (``temporary_op``)
        resolve lazily through :meth:`_fixed_cost`.
        """
        specs = registered_ops()
        self._op_slot: dict = {}
        self._pooled_keys: list[str] = []
        pre = np.zeros(len(specs))
        post = np.zeros(len(specs))
        self._fixed_pre: dict = {}
        self._fixed_post: dict = {}
        for i, spec in enumerate(specs):
            self._op_slot[spec.op] = i
            self._pooled_keys.append(spec.pooled_key)
            if isinstance(spec.pre_cost, tuple):
                pre[i] = self._fixed_cost(spec.op, spec.pre_cost,
                                          self._fixed_pre)
            if isinstance(spec.post_cost, tuple):
                post[i] = self._fixed_cost(spec.op, spec.post_cost,
                                           self._fixed_post)
        #: fixed host-side seconds charged around each op's handler,
        #: indexed by registry slot — ``counts @ vec`` prices a whole
        #: drained batch in one dot product.
        self._pre_cost_vec = pre
        self._post_cost_vec = post

    def _fixed_cost(self, op, keys: tuple, cache: dict) -> float:
        value = cache.get(op)
        if value is None:
            value = cache[op] = float(
                sum(getattr(self.lib.costs, k) for k in keys)
            )
        return value

    # ------------------------------------------------------------------
    # endpoint handle table (used by the registered op handlers)
    # ------------------------------------------------------------------
    def endpoint(self, handle: int) -> Endpoint:
        """Resolve a guest-visible handle to the backend's endpoint."""
        try:
            return self.endpoints[handle]
        except KeyError:
            raise EBADF(f"vphi backend: unknown endpoint handle {handle}") from None

    def new_handle(self, ep: Endpoint) -> int:
        """Intern a freshly opened/accepted endpoint, returning its handle."""
        handle = next(self._handles)
        self.endpoints[handle] = ep
        return handle

    def drop_handle(self, handle: int) -> None:
        del self.endpoints[handle]

    def on_kick(self):
        """Kick handler: drain the avail ring, post one QEMU event each."""
        self._drain()
        yield self.sim.timeout(0)

    def _drain(self) -> None:
        """Drain the avail ring in batches and dispatch; manage the busy flag.

        Two phases per pass.  **Pop**: take every eligible chain off the
        avail ring at once — bounded by the pool's in-flight window, so
        once ``max_inflight`` requests are popped-but-incomplete the rest
        stay on the ring and a retiring completion re-drains.
        **Dispatch**: classify the whole batch — with a worker pool
        armed, every pool-eligible op (per the registry's blocking class)
        goes to its pool shard in one :meth:`WorkerPool.submit_batch`
        call and the event loop never pauses the VM; the remaining
        unbounded ops keep their dedicated ad-hoc worker threads.
        Without a pool this is the paper's dispatch verbatim —
        blocking-class ops freeze the whole VM inline.

        Per-drain accounting is vectorized: pooled submissions accumulate
        into a per-op count vector charged to the tracer in one pass
        (:meth:`_charge_batch`) instead of one counter bump per chain.
        The per-request simulated costs are untouched — only the
        bookkeeping is batched.

        When the last in-flight request retires and the ring is empty the
        device declares itself idle — then re-checks the ring once, in
        case a driver skipped its kick in that window (the virtio
        lost-wakeup protocol).
        """
        pool = self.pool
        ring = self.virtio.ring
        while True:
            # pop phase: everything the in-flight window allows
            batch = []
            room = (self.config.max_inflight - pool.inflight
                    if pool is not None else None)
            while room is None or len(batch) < room:
                elem = ring.pop_avail()
                if elem is None:
                    break
                batch.append(elem)
            if batch:
                self.in_flight += len(batch)
                pooled: list = []
                counts = None
                for elem in batch:
                    req: VPhiRequest = elem.header
                    spec = spec_for(req.op)
                    if pool is not None and spec.rides_pool:
                        slot = self._op_slot.get(spec.op)
                        if slot is None:  # post-construction temporary op
                            self.tracer.count(spec.pooled_key)
                        else:
                            if counts is None:
                                counts = np.zeros(len(self._pooled_keys))
                            counts[slot] += 1.0
                        pooled.append((elem, spec))
                    else:
                        blocking = (self.config.is_blocking(req.op)
                                    if pool is None else False)
                        self.vm.qemu.post_event(
                            (lambda e=elem: self.handle(e)), blocking=blocking
                        )
                if pooled:
                    pool.submit_batch(pooled)
                if counts is not None:
                    self._charge_batch(counts)
            if self.in_flight == 0:
                self.virtio.backend_idle()
                if ring.avail_pending():
                    self.virtio.backend_busy = True
                    continue
            break

    def _charge_batch(self, counts: np.ndarray) -> None:
        """One vectorized tracer pass for a drained batch: per-op pooled
        counters bumped once each, and the batch's total fixed host cost
        (the pre/post rows dotted with the count vector) accumulated as
        drain-level observability."""
        tracer = self.tracer
        keys = self._pooled_keys
        for slot in np.nonzero(counts)[0]:
            tracer.count(keys[slot], int(counts[slot]))
        fixed = float(counts @ self._pre_cost_vec + counts @ self._post_cost_vec)
        if self._power is not None:
            fixed *= self._power.cost_multiplier()
        tracer.accumulate("vphi.backend.batch_fixed_cost", fixed)

    def request_retired(self) -> None:
        """One request left the in-flight set; re-drain for parked work."""
        self.in_flight -= 1
        self._drain()

    # ------------------------------------------------------------------
    def handle(self, elem: VirtqueueElement):
        """Event-loop / ad-hoc-worker entry: service one request."""
        yield from self._service(elem)
        self.request_retired()

    def _service(self, elem: VirtqueueElement, worker: Optional[int] = None):
        """Process one request end-to-end and complete it on the ring.

        ``worker`` is the pool member index when a pool shard is the
        caller (``None`` on the event-loop path) — WORKER_DEATH faults
        then target that member.
        """
        req: VPhiRequest = elem.header
        spec = spec_for(req.op)
        if worker is None:
            # event-loop dispatch: the chain's ring residency ends here.
            # (Pool members close it themselves at shard pickup, before
            # the credit wait.)
            self.tracer.mark_tag(req.tag, SPAN_RING)
        # map guest buffers + dispatch overhead
        yield self.sim.timeout(self.costs.backend)
        self.tracer.mark_tag(req.tag, SPAN_BACKEND_POP)
        self.tracer.emit("vphi.timeline", "backend mapped buffers, dispatching",
                         tag=req.tag, op=spec.op_name, phase=spec.phase,
                         vm=self.vm.name)
        resp = VPhiResponse(tag=req.tag, epoch=req.epoch, op=req.op)
        try:
            # ring corruption is discovered while walking the popped
            # descriptor chain, before any host syscall is issued.
            inj = self.faults.draw(FaultSite.RING_POP,
                                   op=spec.op_name, vm=self.vm.name)
            if inj is not None:
                self._record_injection(spec, inj)
                raise inj.make_error()
            inj = self.faults.draw(FaultSite.BACKEND_DISPATCH,
                                   op=spec.op_name, vm=self.vm.name)
            if inj is not None:
                yield from self._apply_dispatch_fault(spec, req, inj,
                                                      worker=worker)
            result, written = yield from self._dispatch(spec, req, elem)
            resp.result = result
            resp.written = written
        except ScifError as err:
            resp.error = err
            self.errors_returned += 1
            self.tracer.count(spec.error_key)
        self.tracer.mark_tag(req.tag, SPAN_HOST_CALL)
        self.requests_served += 1
        self.tracer.count(spec.served_key)
        self.tracer.emit("vphi.timeline", "host call returned, irq injected",
                         tag=req.tag, op=spec.op_name, phase=spec.phase,
                         vm=self.vm.name)
        # the response record is written into the shared chain header
        resp.pushed_at = self.sim.now
        self.virtio.ring.push_used(elem, written=resp.written, header=resp)
        self.tracer.mark_tag(req.tag, SPAN_COMPLETION_PUSH)
        self.virtio.inject_irq()

    def _dispatch(self, spec: OpSpec, req: VPhiRequest, elem: VirtqueueElement):
        """Table-driven dispatch: cost hooks around the registered handler.

        Returns ``(result, written)``.
        """
        scale = 1.0
        if self._power is not None and (spec.pre_cost is not None
                                        or spec.post_cost is not None):
            scale = self._power.cost_multiplier()
            if scale != 1.0:
                # throttled dispatch: the slow op lands in the same span
                # phases, so the p99 spike is attributable in the breakdown
                self.tracer.count("vphi.backend.throttled_ops")
        pre = spec.pre_cost
        if pre is not None:
            yield self.sim.timeout(scale * (
                self._fixed_cost(spec.op, pre, self._fixed_pre)
                if isinstance(pre, tuple) else pre(self, req)
            ))
        result, written = yield from spec.handler(self, req, elem, req.args)
        post = spec.post_cost
        if post is not None:
            yield self.sim.timeout(scale * (
                self._fixed_cost(spec.op, post, self._fixed_post)
                if isinstance(post, tuple) else post(self, req)
            ))
        return result, written

    # ------------------------------------------------------------------
    # fault injection & recovery (backend side)
    # ------------------------------------------------------------------
    def _record_injection(self, spec: OpSpec, inj: Injection) -> None:
        """Book one fired injection against this VM's timeline."""
        self.tracer.count("vphi.fault.injected")
        self.tracer.count(spec.injected_key)
        self.tracer.emit("vphi.faults", "backend fault injected",
                         kind=inj.kind, op=spec.op_name, vm=self.vm.name)

    def _apply_dispatch_fault(self, spec: OpSpec, req: VPhiRequest,
                              inj: Injection, worker: Optional[int] = None):
        """Process: play out one injected dispatch-site fault.

        Always ends by raising the injection's typed :class:`ScifError`
        (the request is completed on the ring with that error, so its
        descriptors are freed and the frontend's recovery logic decides
        between retry and fail-fast).
        """
        self._record_injection(spec, inj)
        if inj.kind == FaultKind.WORKER_DEATH:
            if worker is not None and self.pool is not None:
                # a pool member died mid-request; QEMU respawns it in
                # place (same shard, same queue) and completes the orphan
                # with ECONNRESET so the ring descriptors aren't leaked.
                self.pool.note_death(worker)
                yield self.sim.timeout(inj.spec.outage)
                yield self.sim.timeout(self.costs.worker_spawn)
                self.tracer.emit("vphi.timeline",
                                 "pool member died, respawned in place",
                                 tag=req.tag, op=spec.op_name,
                                 worker=worker, vm=self.vm.name)
            else:
                # the ad-hoc worker servicing this request dies; QEMU
                # notices after the respawn delay and completes the
                # orphan with ECONNRESET so the ring descriptors are
                # never leaked.
                yield self.sim.timeout(inj.spec.outage)
                self.tracer.emit("vphi.timeline",
                                 "worker respawned, orphan request aborted",
                                 tag=req.tag, op=spec.op_name, vm=self.vm.name)
        elif inj.kind == FaultKind.CARD_RESET:
            # a card reset is machine-wide: every VM sharing the card
            # loses its host-side endpoints, and every in-flight pooled
            # request anywhere is aborted with ENXIO (descriptors freed).
            # The broadcast runs *before* the outage so each session is
            # fenced the instant the card goes away, not after it is
            # already back.
            for be in (self.faults.backends or [self]):
                be.on_card_reset(
                    inj, origin_worker=worker if be is self else None
                )
            yield self.sim.timeout(inj.spec.outage)
            self.tracer.emit("vphi.timeline",
                             "card reset completed, in-flight RMA aborted",
                             tag=req.tag, op=spec.op_name, vm=self.vm.name)
        elif inj.kind == FaultKind.BACKEND_RESTART:
            # only *this* VM's QEMU process restarts: its host endpoints
            # die with ESHUTDOWN, its pool aborts, its session rebuilds —
            # other VMs sharing the card are untouched.
            self.on_backend_restart(inj, origin_worker=worker)
            yield self.sim.timeout(inj.spec.outage)
            self.tracer.emit("vphi.timeline",
                             "backend restarted, host endpoints lost",
                             tag=req.tag, op=spec.op_name, vm=self.vm.name)
        err = inj.make_error()
        if isinstance(err, ENODEV) and spec.wants_endpoint:
            # the host driver dropped our descriptor: re-open it so the
            # guest-visible handle works again when the frontend retries.
            # Endpoint-less ops (open/get_node_ids/sysfs) have no
            # descriptor to restore — handle 0 is not a real handle.
            yield from self.reopen_endpoint(req.handle)
        raise err

    def reopen_endpoint(self, handle: int):
        """Process: restore the backend's descriptor after driver death.

        An injected ENODEV means the host SCIF driver revoked the
        backend's open descriptor; QEMU re-opens the device node as a
        *fresh* :class:`Endpoint` carrying over the surviving kernel
        state, so the guest-visible handle stays valid and the
        frontend's retry of an idempotent op can succeed.

        Concurrent callers (several pooled workers hitting ENODEV from
        the same driver-death outage) are collapsed through a per-handle
        gate: the first caller performs the re-open, the rest wait for
        it — one outage, one re-open, one fresh descriptor.
        """
        if handle not in self.endpoints:
            # a re-open for a handle the table does not hold is a bogus
            # recovery (stale handle, double-reopen after a reset
            # cleared the table): surface it instead of swallowing it —
            # a silently "recovered" dead handle would fail much later,
            # far from the cause.
            self.tracer.emit("vphi.timeline",
                             "re-open of unknown endpoint handle rejected",
                             handle=handle, vm=self.vm.name)
            self.tracer.count("vphi.backend.bogus_reopens")
            raise EBADF(
                f"vphi backend: re-open of unknown endpoint handle {handle}"
            )
        pending = self._reopening.get(handle)
        if pending is not None:
            # another worker is already re-opening this handle; wait for
            # its fresh descriptor rather than racing a second re-open.
            if not pending.triggered:
                yield pending
            return
        gate = self.sim.event(name=f"{self.vm.name}-reopen-{handle}")
        self._reopening[handle] = gate
        try:
            yield self.sim.timeout(self.lib.costs.syscall)
            self._swap_endpoint(handle)
            self.endpoint_reopens += 1
            self.tracer.count("vphi.backend.endpoint_reopens")
            self.tracer.emit("vphi.timeline",
                             "host endpoint re-opened after driver death",
                             handle=handle, vm=self.vm.name)
        finally:
            del self._reopening[handle]
            gate.succeed()

    def _swap_endpoint(self, handle: int) -> None:
        """Replace a revoked descriptor with a fresh :class:`Endpoint`.

        The re-opened descriptor must be a *new* object: reusing the old
        one would let a handle that was concurrently connected elsewhere
        alias a live peer (the dead descriptor's ``peer`` pointer still
        reaches the peer's receive queue).  The fresh endpoint adopts
        the surviving kernel state — connection, receive queue, windows,
        RMA fences — and the wait queues move wholesale so parked
        recv/poll/fence waiters wake on the survivor instead of
        stranding on the dead object.
        """
        old = self.endpoints[handle]
        new = Endpoint(old.sim, old.node, owner=old.owner)
        new.state = old.state
        new.port = old.port
        new.peer_addr = old.peer_addr
        new.peer_closed = old.peer_closed
        new._rx = old._rx
        new.rx_bytes = old.rx_bytes
        new.backlog = old.backlog
        new.windows = old.windows
        new.rma_last_issued = old.rma_last_issued
        new.rma_outstanding = old.rma_outstanding
        new.bytes_sent = old.bytes_sent
        new.bytes_received = old.bytes_received
        new.recv_wait = old.recv_wait
        new.poll_wait = old.poll_wait
        new.fence_wait = old.fence_wait
        peer = old.peer
        new.peer = peer
        if peer is not None and peer.peer is old:
            peer.peer = new
        # detach the dead descriptor so nothing can reach it again
        old.peer = None
        old.peer_closed = True
        old.state = EpState.CLOSED
        self.endpoints[handle] = new

    # ------------------------------------------------------------------
    # machine-wide card reset / per-VM backend restart
    # ------------------------------------------------------------------
    def on_card_reset(self, inj: Injection,
                      origin_worker: Optional[int] = None) -> None:
        """The card reset underneath this backend: all host state is gone.

        Synchronous (no sim time passes): the endpoint table is severed
        and cleared, every in-flight pooled request is aborted with
        ENXIO — each completed on the ring so its descriptors are freed
        — and the frontend's session manager is notified so it can fence
        the epoch before anything else is serviced.  ``origin_worker``
        is the pool member already raising the injected error for the
        triggering request (interrupting it too would double-complete).
        """
        self.card_resets += 1
        self.tracer.count("vphi.backend.card_resets")
        self._invalidate(inj, "card_reset",
                         lambda: ENXIO(
                             f"card reset aborted in-flight request "
                             f"(injected at {inj.time:g}s)"),
                         origin_worker)

    def on_backend_restart(self, inj: Injection,
                           origin_worker: Optional[int] = None) -> None:
        """This VM's QEMU process restarted: its host endpoints are gone."""
        self.backend_restarts += 1
        self.tracer.count("vphi.backend.restarts")
        self._invalidate(inj, "backend_restart",
                         lambda: ESHUTDOWN(
                             f"backend restart aborted in-flight request "
                             f"(injected at {inj.time:g}s)"),
                         origin_worker)

    def _invalidate(self, inj: Injection, cause: str, err_factory,
                    origin_worker: Optional[int]) -> None:
        for ep in list(self.endpoints.values()):
            self._sever_endpoint(ep)
        self.endpoints.clear()
        self._reopening.clear()
        if self.pool is not None:
            self.pool.abort_inflight(err_factory, skip=origin_worker)
        self.tracer.emit("vphi.timeline", "backend state invalidated",
                         cause=cause, vm=self.vm.name)
        if self.session_listener is not None:
            self.session_listener(cause)

    def _sever_endpoint(self, ep: Endpoint) -> None:
        """Kill one host endpoint in place (the card-side state is gone).

        Synchronous analog of :meth:`NativeScif.close` without syscall
        cost — the reset, not a guest call, is destroying the state:
        parked dialers are refused, the peer sees the connection die
        immediately, the port and windows are released, and every parked
        recv/poll/fence waiter wakes to find a dead socket.
        """
        if ep.state is EpState.CLOSED:
            return
        if ep.state is EpState.LISTENING and ep.backlog is not None:
            while True:
                ok, creq = ep.backlog.try_get()
                if not ok:
                    break
                if not creq.reply.triggered:
                    creq.reply.fail(
                        ECONNREFUSED("listener lost to card reset")
                    )
            ep.backlog.close()
        peer = ep.peer
        if ep.state is EpState.CONNECTED and peer is not None:
            peer.mark_peer_closed()
        if ep.port is not None and ep.node.ports.get(ep.port) is ep:
            ep.node.release_port(ep.port)
        ep.windows.clear()
        ep.peer_closed = True
        ep.state = EpState.CLOSED
        ep.recv_wait.wake_all()
        ep.poll_wait.wake_all()
        ep.fence_wait.wake_all()

    def complete_with_error(self, elem: VirtqueueElement, err: ScifError) -> None:
        """Complete one aborted request on the ring with ``err``.

        Used by the pool's abort path for requests whose member was
        interrupted (or whose chain was still queued) when the card
        reset: the response echoes the request's tag/epoch/op so the
        frontend can correlate — and, post-fence, drop — it, and pushing
        it frees the chain's descriptors.
        """
        req: VPhiRequest = elem.header
        spec = spec_for(req.op)
        resp = VPhiResponse(tag=req.tag, error=err, epoch=req.epoch, op=req.op)
        self.errors_returned += 1
        self.requests_served += 1
        self.tracer.count(spec.error_key)
        self.tracer.count(spec.served_key)
        self.tracer.emit("vphi.timeline", "in-flight request aborted",
                         tag=req.tag, op=spec.op_name,
                         error=type(err).__name__, vm=self.vm.name)
        resp.pushed_at = self.sim.now
        self.virtio.ring.push_used(elem, written=0, header=resp)
        self.tracer.mark_tag(req.tag, SPAN_COMPLETION_PUSH)
        self.virtio.inject_irq()

    # ------------------------------------------------------------------
    # guest buffer access (zero copy: descriptors are guest-physical)
    # ------------------------------------------------------------------
    def out_payload(self, elem: VirtqueueElement) -> np.ndarray:
        """Gather the guest->host bulk payload riding the chain."""
        # elem.out[0] is the serialized request header; data follows.
        parts = []
        for desc in elem.out[1:]:
            sg = self.vm.gpa_sg(desc.addr, desc.len)
            parts.extend(e.mem.read(e.paddr, e.nbytes) for e in sg)
        return np.concatenate(parts) if parts else np.empty(0, dtype=np.uint8)

    def scatter_in(self, elem: VirtqueueElement, data: np.ndarray) -> int:
        """Scatter a host->guest payload into the chain's in descriptors."""
        off = 0
        for desc in elem.inb:
            if off >= len(data):
                break
            take = min(desc.len, len(data) - off)
            for e in self.vm.gpa_sg(desc.addr, take):
                e.mem.write(e.paddr, data[off : off + e.nbytes])
                off += e.nbytes
        return off

    # ------------------------------------------------------------------
    # RMA helpers shared by the registered readfrom/writeto handlers
    # (fixed syscall/completion costs are the ops' pre/post cost hooks)
    # ------------------------------------------------------------------
    def window_rma(self, req: VPhiRequest, direction: str):
        """Window-to-window RMA: both sides pinned, DMA direct (no bounce)."""
        a = req.args
        ep = self.endpoint(req.handle)
        want = Prot.SCIF_PROT_WRITE if direction == "read" else Prot.SCIF_PROT_READ
        local_sg = ep.windows.resolve(a["loffset"], a["nbytes"], want)
        n = yield from self.lib.rma_sg(
            ep, local_sg, a["nbytes"], a["roffset"], direction,
            RmaFlag(a.get("flags", 0)),
        )
        return n

    def chunked_rma(self, req: VPhiRequest, elem: VirtqueueElement, direction: str):
        """Per-chunk RMA between the remote window and the bounce chunks.

        One backend submission cost per KMALLOC element; the DMA engine
        charges its own setup + link occupancy per chunk.
        """
        ep = self.endpoint(req.handle)
        descs = elem.inb if direction == "read" else elem.out[1:]
        roffset = req.args["roffset"]
        flags = RmaFlag(req.args.get("flags", 0))
        moved = 0
        for desc in descs:
            yield self.sim.timeout(self.costs.per_chunk)
            local_sg = self.vm.gpa_sg(desc.addr, desc.len)
            yield from self.lib.rma_sg(ep, local_sg, desc.len, roffset + moved,
                                       direction, flags)
            moved += desc.len
        return moved

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<VPhiBackend {self.vm.name} served={self.requests_served}>"
