"""The vPHI backend device: a virtual PCI device inside QEMU.

§III: "the backend is notified by the frontend when a new request has
been pushed to the virtio ring.  Then, the backend checks the shared ring
and maps the buffer to its address space avoiding again any copies ...
Afterwards, the backend performs the relevant system call to the host
SCIF driver and waits for the result.  When the system call returns, it
pushes the result in the shared ring and notifies the guest via a virtual
interrupt."

Each VM's backend is a distinct QEMU host process holding its own
``libscif`` context — "from the host driver's perspective, multiple VMs
issuing SCIF requests are essentially multiple host processes", which is
precisely what enables Xeon Phi sharing.
"""

from __future__ import annotations

import itertools
from typing import Optional

import numpy as np

from ..analysis.calibration import VPHI_COSTS, VPhiCosts
from ..kvm.fault import PfnPhiInfo
from ..scif import (
    Endpoint,
    NativeScif,
    PollEvent,
    Prot,
    RecvFlag,
    RmaFlag,
    ScifError,
    SendFlag,
)
from ..sim import Tracer
from ..virtio import VirtioDevice, VirtqueueElement
from .config import VPhiConfig
from .protocol import VPhiOp, VPhiRequest, VPhiResponse

__all__ = ["VPhiBackend"]


class VPhiBackend:
    """QEMU extension servicing one VM's vPHI traffic."""

    def __init__(
        self,
        vm,
        virtio: VirtioDevice,
        lib: NativeScif,
        host_kernel,
        config: Optional[VPhiConfig] = None,
        costs: VPhiCosts = VPHI_COSTS,
        tracer: Optional[Tracer] = None,
    ):
        self.vm = vm
        self.sim = vm.sim
        self.virtio = virtio
        self.lib = lib
        self.host_kernel = host_kernel
        self.config = config or VPhiConfig()
        self.costs = costs
        self.tracer = tracer or Tracer()
        self.endpoints: dict[int, Endpoint] = {}
        self._handles = itertools.count(1)
        virtio.bind_backend(self.on_kick)
        #: requests currently being handled (drives the busy flag that
        #: notification suppression keys off).
        self.in_flight = 0
        #: metrics
        self.requests_served = 0
        self.errors_returned = 0

    # ------------------------------------------------------------------
    def _ep(self, handle: int) -> Endpoint:
        try:
            return self.endpoints[handle]
        except KeyError:
            raise ScifError(f"vphi backend: unknown endpoint handle {handle}") from None

    def on_kick(self):
        """Kick handler: drain the avail ring, post one QEMU event each."""
        self._drain()
        yield self.sim.timeout(0)

    def _drain(self) -> None:
        """Pop every available chain; manage the device-busy flag.

        When the last in-flight request retires and the ring is empty the
        device declares itself idle — then re-checks the ring once, in
        case a driver skipped its kick in that window (the virtio
        lost-wakeup protocol).
        """
        while True:
            elem = self.virtio.ring.pop_avail()
            if elem is None:
                break
            req: VPhiRequest = elem.header
            blocking = self.config.is_blocking(req.op)
            self.in_flight += 1
            self.vm.qemu.post_event(
                (lambda e=elem: self.handle(e)), blocking=blocking
            )
        if self.in_flight == 0:
            self.virtio.backend_idle()
            if self.virtio.ring.avail_pending():
                self.virtio.backend_busy = True
                self._drain()

    # ------------------------------------------------------------------
    def handle(self, elem: VirtqueueElement):
        """Process one request end-to-end and complete it on the ring."""
        req: VPhiRequest = elem.header
        # map guest buffers + dispatch overhead
        yield self.sim.timeout(self.costs.backend)
        self.tracer.emit("vphi.timeline", "backend mapped buffers, dispatching",
                         tag=req.tag, op=req.op.value, vm=self.vm.name)
        resp = VPhiResponse(tag=req.tag)
        try:
            result, written = yield from self._dispatch(req, elem)
            resp.result = result
            resp.written = written
        except ScifError as err:
            resp.error = err
            self.errors_returned += 1
        self.requests_served += 1
        self.tracer.emit("vphi.timeline", "host call returned, irq injected",
                         tag=req.tag, op=req.op.value, vm=self.vm.name)
        # the response record is written into the shared chain header
        self.virtio.ring.push_used(elem, written=resp.written, header=resp)
        self.virtio.inject_irq()
        self.in_flight -= 1
        # pick up requests whose kicks were suppressed while we worked
        self._drain()

    # ------------------------------------------------------------------
    # guest buffer access (zero copy: descriptors are guest-physical)
    # ------------------------------------------------------------------
    def _out_payload(self, elem: VirtqueueElement) -> np.ndarray:
        # elem.out[0] is the serialized request header; data follows.
        parts = []
        for desc in elem.out[1:]:
            sg = self.vm.gpa_sg(desc.addr, desc.len)
            parts.extend(e.mem.read(e.paddr, e.nbytes) for e in sg)
        return np.concatenate(parts) if parts else np.empty(0, dtype=np.uint8)

    def _scatter_in(self, elem: VirtqueueElement, data: np.ndarray) -> int:
        off = 0
        for desc in elem.inb:
            if off >= len(data):
                break
            take = min(desc.len, len(data) - off)
            for e in self.vm.gpa_sg(desc.addr, take):
                e.mem.write(e.paddr, data[off : off + e.nbytes])
                off += e.nbytes
        return off

    # ------------------------------------------------------------------
    def _dispatch(self, req: VPhiRequest, elem: VirtqueueElement):
        """Returns (result, written)."""
        op = req.op
        a = req.args
        if op is VPhiOp.OPEN:
            ep = yield from self.lib.open()
            handle = next(self._handles)
            self.endpoints[handle] = ep
            return handle, 0
        if op is VPhiOp.CLOSE:
            ep = self._ep(req.handle)
            yield from self.lib.close(ep)
            del self.endpoints[req.handle]
            return 0, 0
        if op is VPhiOp.BIND:
            port = yield from self.lib.bind(self._ep(req.handle), a["port"])
            return port, 0
        if op is VPhiOp.LISTEN:
            yield from self.lib.listen(self._ep(req.handle), a.get("backlog", 16))
            return 0, 0
        if op is VPhiOp.CONNECT:
            port = yield from self.lib.connect(self._ep(req.handle), tuple(a["addr"]))
            return port, 0
        if op is VPhiOp.ACCEPT:
            conn, peer = yield from self.lib.accept(
                self._ep(req.handle), block=a.get("block", True)
            )
            handle = next(self._handles)
            self.endpoints[handle] = conn
            return (handle, peer), 0
        if op is VPhiOp.SEND:
            payload = self._out_payload(elem)
            n = yield from self.lib.send(
                self._ep(req.handle), payload, SendFlag(a.get("flags", 1))
            )
            return n, 0
        if op is VPhiOp.RECV:
            data = yield from self.lib.recv(
                self._ep(req.handle), a["nbytes"], RecvFlag(a.get("flags", 1))
            )
            written = self._scatter_in(elem, data)
            return len(data), written
        if op is VPhiOp.REGISTER:
            # the guest pinned its pages; their SG rides the request
            offset = yield from self.lib.register_sg(
                self._ep(req.handle),
                a["sg"],
                a["nbytes"],
                offset=a.get("offset"),
                prot=Prot(a.get("prot", 3)),
                label=f"{self.vm.name}-guest-window",
            )
            return offset, 0
        if op is VPhiOp.UNREGISTER:
            yield from self.lib.unregister(self._ep(req.handle), a["offset"])
            return 0, 0
        if op is VPhiOp.READFROM:
            # window-to-window: both sides pinned, DMA direct (no bounce)
            ep = self._ep(req.handle)
            yield self.sim.timeout(self.lib.costs.syscall + self.lib.costs.driver)
            local_sg = ep.windows.resolve(a["loffset"], a["nbytes"], Prot.SCIF_PROT_WRITE)
            n = yield from self.lib.rma_sg(
                ep, local_sg, a["nbytes"], a["roffset"], "read", RmaFlag(a.get("flags", 0))
            )
            yield self.sim.timeout(self.lib.costs.completion)
            return n, 0
        if op is VPhiOp.WRITETO:
            ep = self._ep(req.handle)
            yield self.sim.timeout(self.lib.costs.syscall + self.lib.costs.driver)
            local_sg = ep.windows.resolve(a["loffset"], a["nbytes"], Prot.SCIF_PROT_READ)
            n = yield from self.lib.rma_sg(
                ep, local_sg, a["nbytes"], a["roffset"], "write", RmaFlag(a.get("flags", 0))
            )
            yield self.sim.timeout(self.lib.costs.completion)
            return n, 0
        if op is VPhiOp.VREADFROM:
            n = yield from self._chunked_rma(req, elem, "read")
            return n, n
        if op is VPhiOp.VWRITETO:
            n = yield from self._chunked_rma(req, elem, "write")
            return n, 0
        if op is VPhiOp.MMAP:
            ep = self._ep(req.handle)
            prot = Prot(a.get("prot", 3))
            if ep.peer is None:
                raise ScifError("mmap on unconnected endpoint")
            sg = ep.peer.windows.resolve(a["roffset"], a["nbytes"], prot)
            yield self.sim.timeout(self.costs.backend)
            # the "<15 LOC host SCIF driver" half: hand the frame numbers
            # back so the guest VMA can be tagged VM_PFNPHI.
            return PfnPhiInfo(sg), 0
        if op is VPhiOp.FENCE_MARK:
            mark = yield from self.lib.fence_mark(self._ep(req.handle))
            return mark, 0
        if op is VPhiOp.FENCE_WAIT:
            yield from self.lib.fence_wait(self._ep(req.handle), a["mark"])
            return 0, 0
        if op is VPhiOp.FENCE_SIGNAL:
            yield from self.lib.fence_signal(
                self._ep(req.handle), a["loffset"], a["lval"],
                a["roffset"], a["rval"],
            )
            return 0, 0
        if op is VPhiOp.GET_NODE_IDS:
            ids = yield from self.lib.get_node_ids()
            return ids, 0
        if op is VPhiOp.POLL:
            revents = yield from self.lib.poll(
                [(self._ep(req.handle), PollEvent(a["mask"]))],
                timeout=a.get("timeout"),
            )
            return int(revents[0]), 0
        if op is VPhiOp.SYSFS_READ:
            yield self.sim.timeout(0)
            return self.host_kernel.sysfs.read(a["path"]), 0
        raise ScifError(f"vphi backend: unknown op {op!r}")

    def _chunked_rma(self, req: VPhiRequest, elem: VirtqueueElement, direction: str):
        """Per-chunk RMA between the remote window and the bounce chunks.

        One backend submission cost per KMALLOC element; the DMA engine
        charges its own setup + link occupancy per chunk.
        """
        ep = self._ep(req.handle)
        descs = elem.inb if direction == "read" else elem.out[1:]
        roffset = req.args["roffset"]
        flags = RmaFlag(req.args.get("flags", 0))
        # one host ioctl for the whole operation
        yield self.sim.timeout(self.lib.costs.syscall + self.lib.costs.driver)
        moved = 0
        for desc in descs:
            yield self.sim.timeout(self.costs.per_chunk)
            local_sg = self.vm.gpa_sg(desc.addr, desc.len)
            yield from self.lib.rma_sg(ep, local_sg, desc.len, roffset + moved,
                                       direction, flags)
            moved += desc.len
        yield self.sim.timeout(self.lib.costs.completion)
        return moved

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<VPhiBackend {self.vm.name} served={self.requests_served}>"
