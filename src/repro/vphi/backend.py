"""The vPHI backend device: a virtual PCI device inside QEMU.

§III: "the backend is notified by the frontend when a new request has
been pushed to the virtio ring.  Then, the backend checks the shared ring
and maps the buffer to its address space avoiding again any copies ...
Afterwards, the backend performs the relevant system call to the host
SCIF driver and waits for the result.  When the system call returns, it
pushes the result in the shared ring and notifies the guest via a virtual
interrupt."

Each VM's backend is a distinct QEMU host process holding its own
``libscif`` context — "from the host driver's perspective, multiple VMs
issuing SCIF requests are essentially multiple host processes", which is
precisely what enables Xeon Phi sharing.

Per-operation semantics live in the :mod:`~repro.vphi.ops` registry; the
backend is a table-driven executor: look the spec up, charge its cost
hooks, run its handler against the host :class:`~repro.scif.NativeScif`.

Dispatch runs in one of two modes.  **Blocking** (the default, the
paper's implementation): blocking-class ops are handled inline on QEMU's
event loop with the whole VM paused; unbounded ops spawn ad-hoc worker
threads.  **Pooled** (``VPhiConfig(backend_workers=N)``): every
pool-eligible op is handed to a persistent :class:`~repro.vphi.pool.WorkerPool`
member instead, the vCPU keeps running, and at most
``VPhiConfig.max_inflight`` popped requests are in flight — excess
chains wait on the avail ring.
"""

from __future__ import annotations

import itertools
from typing import Optional

import numpy as np

from ..analysis.calibration import VPHI_COSTS, VPhiCosts
from ..faults import ENODEV, NO_FAULTS, FaultInjector, FaultKind, FaultSite, Injection
from ..scif import Endpoint, NativeScif, Prot, RmaFlag, ScifError
from ..scif.endpoint import EpState
from ..sim import Event, Tracer
from ..virtio import VirtioDevice, VirtqueueElement
from .config import VPhiConfig
from .ops import OpSpec, spec_for
from .pool import CardArbiter, WorkerPool
from .protocol import VPhiRequest, VPhiResponse

__all__ = ["VPhiBackend"]


class VPhiBackend:
    """QEMU extension servicing one VM's vPHI traffic."""

    def __init__(
        self,
        vm,
        virtio: VirtioDevice,
        lib: NativeScif,
        host_kernel,
        config: Optional[VPhiConfig] = None,
        costs: VPhiCosts = VPHI_COSTS,
        tracer: Optional[Tracer] = None,
        faults: Optional[FaultInjector] = None,
        arbiter: Optional[CardArbiter] = None,
    ):
        self.vm = vm
        self.sim = vm.sim
        self.virtio = virtio
        self.lib = lib
        self.host_kernel = host_kernel
        self.config = config or VPhiConfig()
        self.costs = costs
        # default to the owning VM's tracer so frontend + backend share
        # one timeline (a fresh Tracer here would silently drop half of it)
        self.tracer = tracer or getattr(vm, "tracer", None) or Tracer()
        self.endpoints: dict[int, Endpoint] = {}
        self._handles = itertools.count(1)
        #: fault source (default: inject nothing).
        self.faults = faults or NO_FAULTS
        virtio.bind_backend(self.on_kick)
        #: requests currently being handled (drives the busy flag that
        #: notification suppression keys off).
        self.in_flight = 0
        #: metrics
        self.requests_served = 0
        self.errors_returned = 0
        self.endpoint_reopens = 0
        #: per-handle re-open gates: one driver-death outage triggers one
        #: re-open even when several pooled workers hit ENODEV at once.
        self._reopening: dict[int, Event] = {}
        #: the worker pool (None in the paper's blocking dispatch mode).
        self.pool: Optional[WorkerPool] = None
        if self.config.pooled:
            arbiter = arbiter or CardArbiter(
                self.sim, slots=self.config.backend_workers
            )
            self.pool = WorkerPool(
                self, self.config.backend_workers, arbiter, costs=self.costs
            )

    # ------------------------------------------------------------------
    # endpoint handle table (used by the registered op handlers)
    # ------------------------------------------------------------------
    def endpoint(self, handle: int) -> Endpoint:
        """Resolve a guest-visible handle to the backend's endpoint."""
        try:
            return self.endpoints[handle]
        except KeyError:
            raise ScifError(f"vphi backend: unknown endpoint handle {handle}") from None

    def new_handle(self, ep: Endpoint) -> int:
        """Intern a freshly opened/accepted endpoint, returning its handle."""
        handle = next(self._handles)
        self.endpoints[handle] = ep
        return handle

    def drop_handle(self, handle: int) -> None:
        del self.endpoints[handle]

    def on_kick(self):
        """Kick handler: drain the avail ring, post one QEMU event each."""
        self._drain()
        yield self.sim.timeout(0)

    def _drain(self) -> None:
        """Pop available chains and dispatch each; manage the busy flag.

        Classification: with a worker pool armed, every pool-eligible op
        (per the registry's blocking class) goes to its pool shard and
        the event loop never pauses the VM; the remaining unbounded ops
        keep their dedicated ad-hoc worker threads.  Without a pool this
        is the paper's dispatch verbatim — blocking-class ops freeze the
        whole VM inline.

        The pool's in-flight window bounds how much is popped: once
        ``max_inflight`` requests are popped-but-incomplete the rest stay
        on the avail ring and a retiring completion re-drains.

        When the last in-flight request retires and the ring is empty the
        device declares itself idle — then re-checks the ring once, in
        case a driver skipped its kick in that window (the virtio
        lost-wakeup protocol).
        """
        while True:
            if (self.pool is not None
                    and self.pool.inflight >= self.config.max_inflight):
                break
            elem = self.virtio.ring.pop_avail()
            if elem is None:
                break
            req: VPhiRequest = elem.header
            spec = spec_for(req.op)
            self.in_flight += 1
            if self.pool is not None and spec.rides_pool:
                self.tracer.count(spec.pooled_key)
                self.pool.submit(elem, spec)
            else:
                blocking = (self.config.is_blocking(req.op)
                            if self.pool is None else False)
                self.vm.qemu.post_event(
                    (lambda e=elem: self.handle(e)), blocking=blocking
                )
        if self.in_flight == 0:
            self.virtio.backend_idle()
            if self.virtio.ring.avail_pending():
                self.virtio.backend_busy = True
                self._drain()

    def request_retired(self) -> None:
        """One request left the in-flight set; re-drain for parked work."""
        self.in_flight -= 1
        self._drain()

    # ------------------------------------------------------------------
    def handle(self, elem: VirtqueueElement):
        """Event-loop / ad-hoc-worker entry: service one request."""
        yield from self._service(elem)
        self.request_retired()

    def _service(self, elem: VirtqueueElement, worker: Optional[int] = None):
        """Process one request end-to-end and complete it on the ring.

        ``worker`` is the pool member index when a pool shard is the
        caller (``None`` on the event-loop path) — WORKER_DEATH faults
        then target that member.
        """
        req: VPhiRequest = elem.header
        spec = spec_for(req.op)
        # map guest buffers + dispatch overhead
        yield self.sim.timeout(self.costs.backend)
        self.tracer.emit("vphi.timeline", "backend mapped buffers, dispatching",
                         tag=req.tag, op=spec.op_name, phase=spec.phase,
                         vm=self.vm.name)
        resp = VPhiResponse(tag=req.tag)
        try:
            # ring corruption is discovered while walking the popped
            # descriptor chain, before any host syscall is issued.
            inj = self.faults.draw(FaultSite.RING_POP,
                                   op=spec.op_name, vm=self.vm.name)
            if inj is not None:
                self._record_injection(spec, inj)
                raise inj.make_error()
            inj = self.faults.draw(FaultSite.BACKEND_DISPATCH,
                                   op=spec.op_name, vm=self.vm.name)
            if inj is not None:
                yield from self._apply_dispatch_fault(spec, req, inj,
                                                      worker=worker)
            result, written = yield from self._dispatch(spec, req, elem)
            resp.result = result
            resp.written = written
        except ScifError as err:
            resp.error = err
            self.errors_returned += 1
            self.tracer.count(spec.error_key)
        self.requests_served += 1
        self.tracer.count(spec.served_key)
        self.tracer.emit("vphi.timeline", "host call returned, irq injected",
                         tag=req.tag, op=spec.op_name, phase=spec.phase,
                         vm=self.vm.name)
        # the response record is written into the shared chain header
        self.virtio.ring.push_used(elem, written=resp.written, header=resp)
        self.virtio.inject_irq()

    def _dispatch(self, spec: OpSpec, req: VPhiRequest, elem: VirtqueueElement):
        """Table-driven dispatch: cost hooks around the registered handler.

        Returns ``(result, written)``.
        """
        if spec.pre_cost is not None:
            yield self.sim.timeout(spec.pre_cost(self, req))
        result, written = yield from spec.handler(self, req, elem, req.args)
        if spec.post_cost is not None:
            yield self.sim.timeout(spec.post_cost(self, req))
        return result, written

    # ------------------------------------------------------------------
    # fault injection & recovery (backend side)
    # ------------------------------------------------------------------
    def _record_injection(self, spec: OpSpec, inj: Injection) -> None:
        """Book one fired injection against this VM's timeline."""
        self.tracer.count("vphi.fault.injected")
        self.tracer.count(spec.injected_key)
        self.tracer.emit("vphi.faults", "backend fault injected",
                         kind=inj.kind, op=spec.op_name, vm=self.vm.name)

    def _apply_dispatch_fault(self, spec: OpSpec, req: VPhiRequest,
                              inj: Injection, worker: Optional[int] = None):
        """Process: play out one injected dispatch-site fault.

        Always ends by raising the injection's typed :class:`ScifError`
        (the request is completed on the ring with that error, so its
        descriptors are freed and the frontend's recovery logic decides
        between retry and fail-fast).
        """
        self._record_injection(spec, inj)
        if inj.kind == FaultKind.WORKER_DEATH:
            if worker is not None and self.pool is not None:
                # a pool member died mid-request; QEMU respawns it in
                # place (same shard, same queue) and completes the orphan
                # with ECONNRESET so the ring descriptors aren't leaked.
                self.pool.note_death(worker)
                yield self.sim.timeout(inj.spec.outage)
                yield self.sim.timeout(self.costs.worker_spawn)
                self.tracer.emit("vphi.timeline",
                                 "pool member died, respawned in place",
                                 tag=req.tag, op=spec.op_name,
                                 worker=worker, vm=self.vm.name)
            else:
                # the ad-hoc worker servicing this request dies; QEMU
                # notices after the respawn delay and completes the
                # orphan with ECONNRESET so the ring descriptors are
                # never leaked.
                yield self.sim.timeout(inj.spec.outage)
                self.tracer.emit("vphi.timeline",
                                 "worker respawned, orphan request aborted",
                                 tag=req.tag, op=spec.op_name, vm=self.vm.name)
        elif inj.kind == FaultKind.CARD_RESET:
            # mid-RMA card reset: the card is unreachable for the reset
            # window, then every in-flight transfer aborts with ENXIO.
            yield self.sim.timeout(inj.spec.outage)
            self.tracer.emit("vphi.timeline",
                             "card reset completed, in-flight RMA aborted",
                             tag=req.tag, op=spec.op_name, vm=self.vm.name)
        err = inj.make_error()
        if isinstance(err, ENODEV):
            # the host driver dropped our descriptor: re-open it so the
            # guest-visible handle works again when the frontend retries.
            yield from self.reopen_endpoint(req.handle)
        raise err

    def reopen_endpoint(self, handle: int):
        """Process: restore the backend's descriptor after driver death.

        An injected ENODEV means the host SCIF driver revoked the
        backend's open descriptor; QEMU re-opens the device node as a
        *fresh* :class:`Endpoint` carrying over the surviving kernel
        state, so the guest-visible handle stays valid and the
        frontend's retry of an idempotent op can succeed.

        Concurrent callers (several pooled workers hitting ENODEV from
        the same driver-death outage) are collapsed through a per-handle
        gate: the first caller performs the re-open, the rest wait for
        it — one outage, one re-open, one fresh descriptor.
        """
        if handle not in self.endpoints:
            return
        pending = self._reopening.get(handle)
        if pending is not None:
            # another worker is already re-opening this handle; wait for
            # its fresh descriptor rather than racing a second re-open.
            if not pending.triggered:
                yield pending
            return
        gate = self.sim.event(name=f"{self.vm.name}-reopen-{handle}")
        self._reopening[handle] = gate
        try:
            yield self.sim.timeout(self.lib.costs.syscall)
            self._swap_endpoint(handle)
            self.endpoint_reopens += 1
            self.tracer.count("vphi.backend.endpoint_reopens")
            self.tracer.emit("vphi.timeline",
                             "host endpoint re-opened after driver death",
                             handle=handle, vm=self.vm.name)
        finally:
            del self._reopening[handle]
            gate.succeed()

    def _swap_endpoint(self, handle: int) -> None:
        """Replace a revoked descriptor with a fresh :class:`Endpoint`.

        The re-opened descriptor must be a *new* object: reusing the old
        one would let a handle that was concurrently connected elsewhere
        alias a live peer (the dead descriptor's ``peer`` pointer still
        reaches the peer's receive queue).  The fresh endpoint adopts
        the surviving kernel state — connection, receive queue, windows,
        RMA fences — and the wait queues move wholesale so parked
        recv/poll/fence waiters wake on the survivor instead of
        stranding on the dead object.
        """
        old = self.endpoints[handle]
        new = Endpoint(old.sim, old.node, owner=old.owner)
        new.state = old.state
        new.port = old.port
        new.peer_addr = old.peer_addr
        new.peer_closed = old.peer_closed
        new._rx = old._rx
        new.rx_bytes = old.rx_bytes
        new.backlog = old.backlog
        new.windows = old.windows
        new.rma_last_issued = old.rma_last_issued
        new.rma_outstanding = old.rma_outstanding
        new.bytes_sent = old.bytes_sent
        new.bytes_received = old.bytes_received
        new.recv_wait = old.recv_wait
        new.poll_wait = old.poll_wait
        new.fence_wait = old.fence_wait
        peer = old.peer
        new.peer = peer
        if peer is not None and peer.peer is old:
            peer.peer = new
        # detach the dead descriptor so nothing can reach it again
        old.peer = None
        old.peer_closed = True
        old.state = EpState.CLOSED
        self.endpoints[handle] = new

    # ------------------------------------------------------------------
    # guest buffer access (zero copy: descriptors are guest-physical)
    # ------------------------------------------------------------------
    def out_payload(self, elem: VirtqueueElement) -> np.ndarray:
        """Gather the guest->host bulk payload riding the chain."""
        # elem.out[0] is the serialized request header; data follows.
        parts = []
        for desc in elem.out[1:]:
            sg = self.vm.gpa_sg(desc.addr, desc.len)
            parts.extend(e.mem.read(e.paddr, e.nbytes) for e in sg)
        return np.concatenate(parts) if parts else np.empty(0, dtype=np.uint8)

    def scatter_in(self, elem: VirtqueueElement, data: np.ndarray) -> int:
        """Scatter a host->guest payload into the chain's in descriptors."""
        off = 0
        for desc in elem.inb:
            if off >= len(data):
                break
            take = min(desc.len, len(data) - off)
            for e in self.vm.gpa_sg(desc.addr, take):
                e.mem.write(e.paddr, data[off : off + e.nbytes])
                off += e.nbytes
        return off

    # ------------------------------------------------------------------
    # RMA helpers shared by the registered readfrom/writeto handlers
    # (fixed syscall/completion costs are the ops' pre/post cost hooks)
    # ------------------------------------------------------------------
    def window_rma(self, req: VPhiRequest, direction: str):
        """Window-to-window RMA: both sides pinned, DMA direct (no bounce)."""
        a = req.args
        ep = self.endpoint(req.handle)
        want = Prot.SCIF_PROT_WRITE if direction == "read" else Prot.SCIF_PROT_READ
        local_sg = ep.windows.resolve(a["loffset"], a["nbytes"], want)
        n = yield from self.lib.rma_sg(
            ep, local_sg, a["nbytes"], a["roffset"], direction,
            RmaFlag(a.get("flags", 0)),
        )
        return n

    def chunked_rma(self, req: VPhiRequest, elem: VirtqueueElement, direction: str):
        """Per-chunk RMA between the remote window and the bounce chunks.

        One backend submission cost per KMALLOC element; the DMA engine
        charges its own setup + link occupancy per chunk.
        """
        ep = self.endpoint(req.handle)
        descs = elem.inb if direction == "read" else elem.out[1:]
        roffset = req.args["roffset"]
        flags = RmaFlag(req.args.get("flags", 0))
        moved = 0
        for desc in descs:
            yield self.sim.timeout(self.costs.per_chunk)
            local_sg = self.vm.gpa_sg(desc.addr, desc.len)
            yield from self.lib.rma_sg(ep, local_sg, desc.len, roffset + moved,
                                       direction, flags)
            moved += desc.len
        return moved

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<VPhiBackend {self.vm.name} served={self.requests_served}>"
