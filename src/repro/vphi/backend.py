"""The vPHI backend device: a virtual PCI device inside QEMU.

§III: "the backend is notified by the frontend when a new request has
been pushed to the virtio ring.  Then, the backend checks the shared ring
and maps the buffer to its address space avoiding again any copies ...
Afterwards, the backend performs the relevant system call to the host
SCIF driver and waits for the result.  When the system call returns, it
pushes the result in the shared ring and notifies the guest via a virtual
interrupt."

Each VM's backend is a distinct QEMU host process holding its own
``libscif`` context — "from the host driver's perspective, multiple VMs
issuing SCIF requests are essentially multiple host processes", which is
precisely what enables Xeon Phi sharing.

Per-operation semantics live in the :mod:`~repro.vphi.ops` registry; the
backend is a table-driven executor: look the spec up, charge its cost
hooks, run its handler against the host :class:`~repro.scif.NativeScif`.
"""

from __future__ import annotations

import itertools
from typing import Optional

import numpy as np

from ..analysis.calibration import VPHI_COSTS, VPhiCosts
from ..faults import ENODEV, NO_FAULTS, FaultInjector, FaultKind, FaultSite, Injection
from ..scif import Endpoint, NativeScif, Prot, RmaFlag, ScifError
from ..sim import Tracer
from ..virtio import VirtioDevice, VirtqueueElement
from .config import VPhiConfig
from .ops import OpSpec, spec_for
from .protocol import VPhiRequest, VPhiResponse

__all__ = ["VPhiBackend"]


class VPhiBackend:
    """QEMU extension servicing one VM's vPHI traffic."""

    def __init__(
        self,
        vm,
        virtio: VirtioDevice,
        lib: NativeScif,
        host_kernel,
        config: Optional[VPhiConfig] = None,
        costs: VPhiCosts = VPHI_COSTS,
        tracer: Optional[Tracer] = None,
        faults: Optional[FaultInjector] = None,
    ):
        self.vm = vm
        self.sim = vm.sim
        self.virtio = virtio
        self.lib = lib
        self.host_kernel = host_kernel
        self.config = config or VPhiConfig()
        self.costs = costs
        # default to the owning VM's tracer so frontend + backend share
        # one timeline (a fresh Tracer here would silently drop half of it)
        self.tracer = tracer or getattr(vm, "tracer", None) or Tracer()
        self.endpoints: dict[int, Endpoint] = {}
        self._handles = itertools.count(1)
        #: fault source (default: inject nothing).
        self.faults = faults or NO_FAULTS
        virtio.bind_backend(self.on_kick)
        #: requests currently being handled (drives the busy flag that
        #: notification suppression keys off).
        self.in_flight = 0
        #: metrics
        self.requests_served = 0
        self.errors_returned = 0
        self.endpoint_reopens = 0

    # ------------------------------------------------------------------
    # endpoint handle table (used by the registered op handlers)
    # ------------------------------------------------------------------
    def endpoint(self, handle: int) -> Endpoint:
        """Resolve a guest-visible handle to the backend's endpoint."""
        try:
            return self.endpoints[handle]
        except KeyError:
            raise ScifError(f"vphi backend: unknown endpoint handle {handle}") from None

    def new_handle(self, ep: Endpoint) -> int:
        """Intern a freshly opened/accepted endpoint, returning its handle."""
        handle = next(self._handles)
        self.endpoints[handle] = ep
        return handle

    def drop_handle(self, handle: int) -> None:
        del self.endpoints[handle]

    def on_kick(self):
        """Kick handler: drain the avail ring, post one QEMU event each."""
        self._drain()
        yield self.sim.timeout(0)

    def _drain(self) -> None:
        """Pop every available chain; manage the device-busy flag.

        When the last in-flight request retires and the ring is empty the
        device declares itself idle — then re-checks the ring once, in
        case a driver skipped its kick in that window (the virtio
        lost-wakeup protocol).
        """
        while True:
            elem = self.virtio.ring.pop_avail()
            if elem is None:
                break
            req: VPhiRequest = elem.header
            blocking = self.config.is_blocking(req.op)
            self.in_flight += 1
            self.vm.qemu.post_event(
                (lambda e=elem: self.handle(e)), blocking=blocking
            )
        if self.in_flight == 0:
            self.virtio.backend_idle()
            if self.virtio.ring.avail_pending():
                self.virtio.backend_busy = True
                self._drain()

    # ------------------------------------------------------------------
    def handle(self, elem: VirtqueueElement):
        """Process one request end-to-end and complete it on the ring."""
        req: VPhiRequest = elem.header
        spec = spec_for(req.op)
        # map guest buffers + dispatch overhead
        yield self.sim.timeout(self.costs.backend)
        self.tracer.emit("vphi.timeline", "backend mapped buffers, dispatching",
                         tag=req.tag, op=spec.op_name, phase=spec.phase,
                         vm=self.vm.name)
        resp = VPhiResponse(tag=req.tag)
        try:
            # ring corruption is discovered while walking the popped
            # descriptor chain, before any host syscall is issued.
            inj = self.faults.draw(FaultSite.RING_POP,
                                   op=spec.op_name, vm=self.vm.name)
            if inj is not None:
                self._record_injection(spec, inj)
                raise inj.make_error()
            inj = self.faults.draw(FaultSite.BACKEND_DISPATCH,
                                   op=spec.op_name, vm=self.vm.name)
            if inj is not None:
                yield from self._apply_dispatch_fault(spec, req, inj)
            result, written = yield from self._dispatch(spec, req, elem)
            resp.result = result
            resp.written = written
        except ScifError as err:
            resp.error = err
            self.errors_returned += 1
            self.tracer.count(spec.error_key)
        self.requests_served += 1
        self.tracer.count(spec.served_key)
        self.tracer.emit("vphi.timeline", "host call returned, irq injected",
                         tag=req.tag, op=spec.op_name, phase=spec.phase,
                         vm=self.vm.name)
        # the response record is written into the shared chain header
        self.virtio.ring.push_used(elem, written=resp.written, header=resp)
        self.virtio.inject_irq()
        self.in_flight -= 1
        # pick up requests whose kicks were suppressed while we worked
        self._drain()

    def _dispatch(self, spec: OpSpec, req: VPhiRequest, elem: VirtqueueElement):
        """Table-driven dispatch: cost hooks around the registered handler.

        Returns ``(result, written)``.
        """
        if spec.pre_cost is not None:
            yield self.sim.timeout(spec.pre_cost(self, req))
        result, written = yield from spec.handler(self, req, elem, req.args)
        if spec.post_cost is not None:
            yield self.sim.timeout(spec.post_cost(self, req))
        return result, written

    # ------------------------------------------------------------------
    # fault injection & recovery (backend side)
    # ------------------------------------------------------------------
    def _record_injection(self, spec: OpSpec, inj: Injection) -> None:
        """Book one fired injection against this VM's timeline."""
        self.tracer.count("vphi.fault.injected")
        self.tracer.count(spec.injected_key)
        self.tracer.emit("vphi.faults", "backend fault injected",
                         kind=inj.kind, op=spec.op_name, vm=self.vm.name)

    def _apply_dispatch_fault(self, spec: OpSpec, req: VPhiRequest,
                              inj: Injection):
        """Process: play out one injected dispatch-site fault.

        Always ends by raising the injection's typed :class:`ScifError`
        (the request is completed on the ring with that error, so its
        descriptors are freed and the frontend's recovery logic decides
        between retry and fail-fast).
        """
        self._record_injection(spec, inj)
        if inj.kind == FaultKind.WORKER_DEATH:
            # the worker servicing this request dies; QEMU notices after
            # the respawn delay and completes the orphan with ECONNRESET
            # so the ring descriptors are never leaked.
            yield self.sim.timeout(inj.spec.outage)
            self.tracer.emit("vphi.timeline",
                             "worker respawned, orphan request aborted",
                             tag=req.tag, op=spec.op_name, vm=self.vm.name)
        elif inj.kind == FaultKind.CARD_RESET:
            # mid-RMA card reset: the card is unreachable for the reset
            # window, then every in-flight transfer aborts with ENXIO.
            yield self.sim.timeout(inj.spec.outage)
            self.tracer.emit("vphi.timeline",
                             "card reset completed, in-flight RMA aborted",
                             tag=req.tag, op=spec.op_name, vm=self.vm.name)
        err = inj.make_error()
        if isinstance(err, ENODEV):
            # the host driver dropped our descriptor: re-open it so the
            # guest-visible handle works again when the frontend retries.
            yield from self.reopen_endpoint(req.handle)
        raise err

    def reopen_endpoint(self, handle: int):
        """Process: restore the backend's descriptor after driver death.

        An injected ENODEV means the host SCIF driver revoked the
        backend's open descriptor; QEMU re-opens the device node and
        reattaches it to the surviving kernel endpoint (the simulation
        keeps one :class:`Endpoint` object for both), so the
        guest-visible handle stays valid and the frontend's retry of an
        idempotent op can succeed.
        """
        if handle not in self.endpoints:
            return
        yield self.sim.timeout(self.lib.costs.syscall)
        self.endpoint_reopens += 1
        self.tracer.count("vphi.backend.endpoint_reopens")
        self.tracer.emit("vphi.timeline",
                         "host endpoint re-opened after driver death",
                         handle=handle, vm=self.vm.name)

    # ------------------------------------------------------------------
    # guest buffer access (zero copy: descriptors are guest-physical)
    # ------------------------------------------------------------------
    def out_payload(self, elem: VirtqueueElement) -> np.ndarray:
        """Gather the guest->host bulk payload riding the chain."""
        # elem.out[0] is the serialized request header; data follows.
        parts = []
        for desc in elem.out[1:]:
            sg = self.vm.gpa_sg(desc.addr, desc.len)
            parts.extend(e.mem.read(e.paddr, e.nbytes) for e in sg)
        return np.concatenate(parts) if parts else np.empty(0, dtype=np.uint8)

    def scatter_in(self, elem: VirtqueueElement, data: np.ndarray) -> int:
        """Scatter a host->guest payload into the chain's in descriptors."""
        off = 0
        for desc in elem.inb:
            if off >= len(data):
                break
            take = min(desc.len, len(data) - off)
            for e in self.vm.gpa_sg(desc.addr, take):
                e.mem.write(e.paddr, data[off : off + e.nbytes])
                off += e.nbytes
        return off

    # ------------------------------------------------------------------
    # RMA helpers shared by the registered readfrom/writeto handlers
    # (fixed syscall/completion costs are the ops' pre/post cost hooks)
    # ------------------------------------------------------------------
    def window_rma(self, req: VPhiRequest, direction: str):
        """Window-to-window RMA: both sides pinned, DMA direct (no bounce)."""
        a = req.args
        ep = self.endpoint(req.handle)
        want = Prot.SCIF_PROT_WRITE if direction == "read" else Prot.SCIF_PROT_READ
        local_sg = ep.windows.resolve(a["loffset"], a["nbytes"], want)
        n = yield from self.lib.rma_sg(
            ep, local_sg, a["nbytes"], a["roffset"], direction,
            RmaFlag(a.get("flags", 0)),
        )
        return n

    def chunked_rma(self, req: VPhiRequest, elem: VirtqueueElement, direction: str):
        """Per-chunk RMA between the remote window and the bounce chunks.

        One backend submission cost per KMALLOC element; the DMA engine
        charges its own setup + link occupancy per chunk.
        """
        ep = self.endpoint(req.handle)
        descs = elem.inb if direction == "read" else elem.out[1:]
        roffset = req.args["roffset"]
        flags = RmaFlag(req.args.get("flags", 0))
        moved = 0
        for desc in descs:
            yield self.sim.timeout(self.costs.per_chunk)
            local_sg = self.vm.gpa_sg(desc.addr, desc.len)
            yield from self.lib.rma_sg(ep, local_sg, desc.len, roffset + moved,
                                       direction, flags)
            moved += desc.len
        return moved

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<VPhiBackend {self.vm.name} served={self.requests_served}>"
