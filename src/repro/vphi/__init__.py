"""vPHI: the paper's contribution — SCIF virtualization for QEMU-KVM guests.

Split-driver design (§III): a guest-kernel frontend intercepts SCIF
system calls and forwards them over a virtio ring to a QEMU backend that
replays them against the host SCIF driver.  Multiple VMs are just
multiple host processes, so the card is shared.

Per-operation semantics (marshal rules, backend handler, blocking class,
trace keys, cost hooks) are declared exactly once in the
:mod:`~repro.vphi.ops` registry; every layer derives from it.
"""

from .backend import VPhiBackend
from .chunking import BounceBuffers, chunk_plan
from .config import VPhiConfig, WaitMode
from .frontend import BatchCall, VPhiFrontend
from .guest_libscif import GuestEndpoint, GuestScif
from .ops import (
    BLOCKING,
    NONBLOCKING,
    REQUIRED,
    ArgSpec,
    OpSpec,
    default_nonblocking_ops,
    register,
    registered_ops,
    spec_for,
    temporary_op,
)
from .pool import CardArbiter, WorkerPool
from .protocol import VPhiOp, VPhiRequest, VPhiResponse
from .qos import AdmissionController
from .session import (
    EndpointRecord,
    MmapRecord,
    SessionJournal,
    SessionManager,
    WindowRecord,
)
from .setup import VPhiInstance, install_vphi
from .wait import HybridWait, InterruptWait, PollingWait, make_wait_scheme

__all__ = [
    "AdmissionController",
    "ArgSpec",
    "BLOCKING",
    "BatchCall",
    "BounceBuffers",
    "CardArbiter",
    "EndpointRecord",
    "GuestEndpoint",
    "GuestScif",
    "MmapRecord",
    "SessionJournal",
    "SessionManager",
    "HybridWait",
    "InterruptWait",
    "NONBLOCKING",
    "OpSpec",
    "PollingWait",
    "REQUIRED",
    "VPhiBackend",
    "VPhiConfig",
    "VPhiFrontend",
    "VPhiInstance",
    "VPhiOp",
    "VPhiRequest",
    "VPhiResponse",
    "WaitMode",
    "WindowRecord",
    "WorkerPool",
    "chunk_plan",
    "default_nonblocking_ops",
    "install_vphi",
    "make_wait_scheme",
    "register",
    "registered_ops",
    "spec_for",
    "temporary_op",
]
