"""vPHI: the paper's contribution — SCIF virtualization for QEMU-KVM guests.

Split-driver design (§III): a guest-kernel frontend intercepts SCIF
system calls and forwards them over a virtio ring to a QEMU backend that
replays them against the host SCIF driver.  Multiple VMs are just
multiple host processes, so the card is shared.
"""

from .backend import VPhiBackend
from .chunking import BounceBuffers, chunk_plan
from .config import VPhiConfig, WaitMode
from .frontend import VPhiFrontend
from .guest_libscif import GuestEndpoint, GuestScif
from .protocol import VPhiOp, VPhiRequest, VPhiResponse
from .setup import VPhiInstance, install_vphi
from .wait import HybridWait, InterruptWait, PollingWait, make_wait_scheme

__all__ = [
    "BounceBuffers",
    "GuestEndpoint",
    "GuestScif",
    "HybridWait",
    "InterruptWait",
    "PollingWait",
    "VPhiBackend",
    "VPhiConfig",
    "VPhiFrontend",
    "VPhiInstance",
    "VPhiOp",
    "VPhiRequest",
    "VPhiResponse",
    "WaitMode",
    "chunk_plan",
    "install_vphi",
    "make_wait_scheme",
]
