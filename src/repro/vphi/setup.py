"""vPHI installation: wire frontend + backend into a VM.

``install_vphi(machine, vm)`` does what deploying the paper's artifact
does: instantiate the virtio device, insmod the frontend into the guest
kernel, plug the backend into the VM's QEMU, and replicate the host's mic
sysfs tree inside the guest (so Intel's tools run unmodified, §III
*Implementation details*).
"""

from __future__ import annotations

from typing import Optional

from ..scif import NativeScif
from ..sim import SimError
from ..virtio import VirtioDevice
from .backend import VPhiBackend
from .config import VPhiConfig
from .frontend import VPhiFrontend
from .guest_libscif import GuestScif
from .pool import CardArbiter

__all__ = ["VPhiInstance", "install_vphi"]


class VPhiInstance:
    """One VM's installed vPHI stack."""

    def __init__(self, vm, virtio: VirtioDevice, frontend: VPhiFrontend,
                 backend: VPhiBackend, config: VPhiConfig, card: int = 0):
        if frontend.tracer is not backend.tracer:
            raise SimError(
                f"{vm.name}: vPHI frontend and backend use different tracers; "
                "each would record half the timeline — pass one shared tracer"
            )
        self.vm = vm
        self.virtio = virtio
        self.frontend = frontend
        self.backend = backend
        self.config = config
        #: the card this VM's dispatch arbitrates against (live migration
        #: rewrites it when the VM moves).
        self.card = card

    def libscif(self, guest_process) -> GuestScif:
        """The guest's libscif for one guest user process."""
        if guest_process.kernel is not self.vm.guest_kernel:
            raise SimError(
                f"process {guest_process.name!r} does not run in {self.vm.name}"
            )
        return GuestScif(self.frontend, guest_process)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<VPhiInstance {self.vm.name} {self.config.wait_mode}>"


def install_vphi(machine, vm, config: Optional[VPhiConfig] = None,
                 arbiter_policy: Optional[str] = None,
                 card: int = 0) -> VPhiInstance:
    """Install vPHI into ``vm`` on ``machine``.  Returns the instance.

    ``arbiter_policy`` selects the card arbiter's scheduling policy
    (``"rr"`` | ``"wfq"`` | ``"priority"``) for the per-card arbiter
    shared by every pooled VM on that card; ``None`` keeps whatever
    the arbiter already runs (``"rr"`` on first creation — the paper's
    baseline, so the Fig 4/5 and A8-A11 goldens are untouched).
    ``card`` names the card whose arbiter this VM joins (one host can
    carry several cards; credit fairness is per card, not per machine).
    """
    if machine.kernel.scif_node is None:
        raise SimError("machine not booted: no host SCIF node")
    config = config or VPhiConfig()
    virtio = VirtioDevice(
        machine.sim, name=f"{vm.name}-virtio-vphi", guest_domain=vm.domain,
        suppress_notifications=config.suppress_notifications,
    )
    # the backend's libscif runs in the QEMU host process — one SCIF
    # context per VM, which is what makes card sharing "just processes".
    lib = NativeScif(
        machine.fabric, machine.kernel.scif_node, vm.qemu_process,
        host_params=machine.host_params,
    )
    # frontend and backend share the VM's tracer: one timeline per VM, so
    # per-VM breakdowns don't mix and no half of the path goes unrecorded
    # both halves draw from the machine's one injector, so a plan's
    # cadence counters span the whole datapath deterministically
    faults = getattr(machine, "faults", None)
    frontend = VPhiFrontend(
        vm, virtio, config=config, host_params=machine.host_params,
        tracer=vm.tracer, faults=faults,
    )
    # all pooled VMs on one card share one dispatch arbiter — that is
    # what makes the credit fairness *per card*, not per VM.  Lazily
    # created so blocking-mode machines carry no arbiter at all.
    arbiter = None
    if config.pooled:
        arbiter_for = getattr(machine, "arbiter_for", None)
        if arbiter_for is not None:
            arbiter = arbiter_for(card, policy=arbiter_policy)
        else:  # duck-typed machine without the per-card helper
            arbiter = getattr(machine, "vphi_arbiter", None)
            if arbiter is None:
                arbiter = CardArbiter(machine.sim,
                                      slots=machine.host_params.cores)
                machine.vphi_arbiter = arbiter
            if arbiter_policy is not None:
                arbiter.set_policy(arbiter_policy)
        # the tenant's QoS identity lives in its own VPhiConfig; the
        # shared arbiter learns it at install time (and re-learns it on
        # reinstall — configure() is safe mid-flight).
        arbiter.configure(vm.name, weight=config.qos_share,
                          priority=config.qos_priority)
    # the card's device object (None on duck-typed test machines): its
    # power model, when enabled, makes backend dispatch frequency-aware
    devices = getattr(machine, "devices", None)
    device = devices[card] if devices is not None and card < len(devices) else None
    backend = VPhiBackend(
        vm, virtio, lib, machine.kernel, config=config, tracer=vm.tracer,
        faults=faults, arbiter=arbiter, device=device,
    )
    # a machine-owned injector learns every backend sharing the card so a
    # CARD_RESET broadcast reaches all of them (the shared NO_FAULTS
    # sentinel must never accumulate backends across machines)
    if faults is not None:
        faults.attach_backend(backend)
    # card resets / backend restarts invalidate host-side state; the
    # frontend's session manager hears about it through this hook
    backend.session_listener = frontend.session.on_backend_invalidated
    # replicate the host's mic sysfs inside the guest (live passthrough)
    for path, _ in machine.kernel.sysfs.walk():
        vm.guest_kernel.sysfs.publish(
            path, (lambda p=path: machine.kernel.sysfs.read(p))
        )
    instance = VPhiInstance(vm, virtio, frontend, backend, config, card=card)
    vm.vphi = instance
    return instance
