"""QoS admission control: typed EBUSY back-pressure at the submit gate.

The paper's prototype has no defence against an oversubscribed card: a
tenant can pile requests into the ring until descriptor exhaustion parks
every submitter and tail latency grows without bound.  The admission
controller gives each vPHI instance two watermarks (both off by default,
so the Fig 4/5 and A8-A11 baselines are byte-identical):

* **queue depth** (``VPhiConfig.admit_queue_depth``) — the number of
  admitted-but-uncompleted guest-visible requests in this frontend.
  Crossing it starts shedding; shedding stops only once the depth drains
  below ``admit_queue_depth * admit_hysteresis`` (classic two-watermark
  hysteresis, so the gate does not flap at the boundary).
* **latency** (``VPhiConfig.admit_latency``) — an EWMA of completed
  request latency.  Crossing it starts shedding; shedding stops when the
  EWMA decays below ``admit_latency * admit_hysteresis``.

A shed is a **typed refusal, not a stall**: the submit raises
:class:`~repro.scif.errors.EBUSY` *before* any bounce chunk or ring
descriptor is allocated, so the guest sees immediate back-pressure it
can react to (the open-loop traffic harness counts these as shed
arrivals).  Three invariants the tests pin:

* a request is admitted **once** per guest-visible submit — segmentation
  re-enters ``submit_batch`` internally and must not double-admit;
* session-recovery **replay bypasses** admission — replayed ops already
  passed the gate once and refusing them would deadlock the rebuild;
* shedding can never strand the frontend: with nothing in flight the
  gate always re-opens (an empty frontend is by definition not
  overloaded), so every arrival gets a typed completion — grant or
  EBUSY — in bounded time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..scif.errors import EBUSY

if TYPE_CHECKING:  # pragma: no cover
    from .frontend import VPhiFrontend
    from .ops import OpSpec

__all__ = ["AdmissionController"]


class AdmissionController:
    """Watermark-based admission gate for one vPHI frontend."""

    def __init__(self, frontend: "VPhiFrontend"):
        cfg = frontend.config
        self.frontend = frontend
        self.tracer = frontend.tracer
        self.enabled = (
            cfg.admit_queue_depth is not None or cfg.admit_latency is not None
        )
        self.depth_high = cfg.admit_queue_depth
        self.depth_low = (
            None if cfg.admit_queue_depth is None
            else cfg.admit_queue_depth * cfg.admit_hysteresis
        )
        self.latency_high = cfg.admit_latency
        self.latency_low = (
            None if cfg.admit_latency is None
            else cfg.admit_latency * cfg.admit_hysteresis
        )
        self.alpha = cfg.admit_ewma_alpha
        #: admitted-but-uncompleted guest-visible requests.
        self.depth = 0
        #: EWMA of completed-request latency (None until first sample).
        self.ewma: float | None = None
        #: hysteresis state: currently refusing new work.
        self.shedding = False
        #: metrics
        self.admitted = 0
        self.shed = 0

    # ------------------------------------------------------------------
    def _overloaded(self) -> bool:
        """Evaluate the watermarks with hysteresis."""
        if self.depth == 0:
            # nothing in flight can never be overload — this is the
            # no-deadlock guarantee: a fully-drained frontend always
            # re-opens the gate regardless of a stale latency EWMA.
            self.shedding = False
            return False
        if self.shedding:
            depth_ok = self.depth_high is None or self.depth <= self.depth_low
            lat_ok = (self.latency_high is None or self.ewma is None
                      or self.ewma <= self.latency_low)
            if depth_ok and lat_ok:
                self.shedding = False
        else:
            depth_hit = (self.depth_high is not None
                         and self.depth >= self.depth_high)
            lat_hit = (self.latency_high is not None and self.ewma is not None
                       and self.ewma > self.latency_high)
            if depth_hit or lat_hit:
                self.shedding = True
        return self.shedding

    def admit(self, spec: "OpSpec", n: int = 1) -> None:
        """Gate ``n`` guest-visible requests of one op; raises
        :class:`EBUSY` (shedding all ``n``) or admits all of them.

        Called once per guest-visible submit — before any marshalling,
        kmalloc or descriptor allocation, so a refusal costs the guest
        nothing but the syscall.
        """
        if self._overloaded():
            self.shed += n
            for _ in range(n):
                self.tracer.count("vphi.qos.shed")
                self.tracer.count(spec.shed_key)
            raise EBUSY(
                f"{self.frontend.vm.name}: admission control shedding "
                f"{spec.op_name} (depth {self.depth}"
                + (f", ewma {self.ewma:.3g}s" if self.ewma is not None else "")
                + ")"
            )
        self.admitted += n
        self.depth += n
        for _ in range(n):
            self.tracer.count("vphi.qos.admitted")

    def finish(self, elapsed: float, n: int = 1) -> None:
        """Retire ``n`` admitted requests that took ``elapsed`` seconds
        (success *and* failure paths both count — a request that errored
        still occupied the frontend)."""
        self.depth -= n
        if self.depth < 0:  # pragma: no cover - accounting guard
            raise AssertionError(
                f"{self.frontend.vm.name}: admission depth went negative"
            )
        if self.ewma is None:
            self.ewma = elapsed
        else:
            self.ewma = self.alpha * elapsed + (1.0 - self.alpha) * self.ewma

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<AdmissionController depth={self.depth} "
            f"shedding={self.shedding} admitted={self.admitted} "
            f"shed={self.shed}>"
        )
