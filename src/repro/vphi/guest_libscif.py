"""Guest-side libscif: the same API, virtualization underneath.

"vPHI is binary-compatible with precompiled applications, alleviating the
need for porting or even recompiling existing source code" (§I).  In this
reproduction that claim is rendered as *call-compatibility*:
:class:`GuestScif` exposes exactly the :class:`~repro.scif.NativeScif`
method set with the same semantics, so the same client code runs
unmodified on the host or inside a VM — only the object it is handed
differs.  Underneath, every call is intercepted by the frontend driver
and forwarded over virtio (Fig 3, steps 3a-3e).

Marshalling is generic: each wrapper hands its scalar arguments to
:meth:`GuestScif._forward`, which looks the operation up in the
:mod:`~repro.vphi.ops` registry and applies that op's declared argument
specs (defaults, wire conversions).  The wrappers keep only what is
genuinely guest-side: page pinning, VMA management, endpoint bookkeeping.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..kvm.fault import PfnPhiInfo
from ..mem import PAGE_SIZE, PinnedPages, VMA, VMAFlag, is_page_aligned
from ..oscore import OSProcess
from ..scif import (
    EINVAL, ENOTCONN, MapFlag, PollEvent, Prot, RecvFlag, RmaFlag, SendFlag,
)
from ..scif.api import DataLike, as_bytes_array
from .frontend import VPhiFrontend
from .ops import spec_for
from .protocol import VPhiOp

__all__ = ["GuestEndpoint", "GuestScif"]


class GuestEndpoint:
    """The guest's endpoint descriptor: an opaque backend handle."""

    __slots__ = ("handle", "port", "peer_addr", "_windows")

    def __init__(self, handle: int):
        self.handle = handle
        self.port: Optional[int] = None
        self.peer_addr: Optional[tuple[int, int]] = None
        #: RAS offset -> guest-side pin to release on unregister.
        self._windows: dict[int, PinnedPages] = {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<GuestEndpoint h={self.handle} port={self.port}>"


class GuestScif:
    """libscif inside the guest, running over the vPHI frontend."""

    def __init__(self, frontend: VPhiFrontend, process: OSProcess):
        self.frontend = frontend
        self.vm = frontend.vm
        self.sim = frontend.sim
        self.process = process

    # ------------------------------------------------------------------
    def _forward(
        self,
        op: VPhiOp,
        ep: Optional[GuestEndpoint] = None,
        out_data=None,
        in_nbytes: int = 0,
        segment_args=None,
        in_sink=None,
        **call_args,
    ):
        """Marshal one intercepted call from its op spec and forward it.

        The registry supplies the marshal rules (scalar args, defaults,
        wire conversions); the frontend does the rest of Fig 3.
        Returns ``(result, in_data)``.
        """
        spec = spec_for(op)
        result, data = yield from self.frontend.submit(
            op,
            handle=ep.handle if spec.wants_endpoint and ep is not None else 0,
            args=spec.marshal(call_args),
            out_data=out_data,
            in_nbytes=in_nbytes,
            segment_args=segment_args,
            in_sink=in_sink,
        )
        return result, data

    def _ensure_connected(self, ep: GuestEndpoint) -> None:
        """Native libscif rejects ENOTCONN *before* validating arguments;
        the shim must check in the same order or a caller could tell the
        stacks apart by which errno a doubly-bad call returns."""
        if ep.peer_addr is None:
            raise ENOTCONN(f"endpoint h={ep.handle} is not connected")

    # ------------------------------------------------------------------
    # endpoint lifecycle
    # ------------------------------------------------------------------
    def open(self):
        handle, _ = yield from self._forward(VPhiOp.OPEN)
        return GuestEndpoint(handle)

    def close(self, ep: GuestEndpoint):
        for pinned in ep._windows.values():
            if pinned.active:
                pinned.unpin()
        ep._windows.clear()
        yield from self._forward(VPhiOp.CLOSE, ep)
        return 0

    def bind(self, ep: GuestEndpoint, port: int = 0):
        bound, _ = yield from self._forward(VPhiOp.BIND, ep, port=port)
        ep.port = bound
        return bound

    def listen(self, ep: GuestEndpoint, backlog: int = 16):
        yield from self._forward(VPhiOp.LISTEN, ep, backlog=backlog)
        return 0

    def connect(self, ep: GuestEndpoint, addr: tuple[int, int]):
        port, _ = yield from self._forward(VPhiOp.CONNECT, ep, addr=addr)
        ep.port = port
        ep.peer_addr = tuple(addr)
        return port

    def accept(self, lep: GuestEndpoint, block: bool = True):
        (handle, peer), _ = yield from self._forward(VPhiOp.ACCEPT, lep, block=block)
        conn = GuestEndpoint(handle)
        conn.port = lep.port
        conn.peer_addr = tuple(peer)
        return conn, tuple(peer)

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------
    def send(self, ep: GuestEndpoint, data: DataLike,
             flags: SendFlag = SendFlag.SCIF_SEND_BLOCK):
        payload = as_bytes_array(data)
        n, _ = yield from self._forward(
            VPhiOp.SEND, ep, out_data=payload, flags=flags
        )
        return n

    def recv(self, ep: GuestEndpoint, nbytes: int,
             flags: RecvFlag = RecvFlag.SCIF_RECV_BLOCK):
        n, data = yield from self._forward(
            VPhiOp.RECV, ep, in_nbytes=nbytes, nbytes=nbytes, flags=flags
        )
        if data is None:
            data = np.empty(0, dtype=np.uint8)
        return data[:n]

    # ------------------------------------------------------------------
    # registration / RMA
    # ------------------------------------------------------------------
    def register(
        self,
        ep: GuestEndpoint,
        vaddr: int,
        nbytes: int,
        offset: Optional[int] = None,
        prot: Prot = Prot.SCIF_PROT_READ | Prot.SCIF_PROT_WRITE,
        flags: MapFlag = MapFlag.NONE,
    ):
        """Pin guest user pages, hand their (guest-physical == host-
        physical) scatter list to the backend (§III, *Guest memory
        registration*)."""
        self._ensure_connected(ep)
        if not is_page_aligned(vaddr) or nbytes <= 0 or nbytes % PAGE_SIZE:
            raise EINVAL("scif_register requires page-aligned addr and length")
        if not (flags & MapFlag.SCIF_MAP_FIXED):
            offset = None
        elif offset is None:
            raise EINVAL("SCIF_MAP_FIXED requires an offset")
        pinned = self.process.address_space.pin(vaddr, nbytes)
        try:
            ras_offset, _ = yield from self._forward(
                VPhiOp.REGISTER, ep,
                sg=pinned.sg, nbytes=nbytes, offset=offset, prot=prot,
            )
        except Exception:
            pinned.unpin()
            raise
        ep._windows[ras_offset] = pinned
        return ras_offset

    def unregister(self, ep: GuestEndpoint, offset: int):
        yield from self._forward(VPhiOp.UNREGISTER, ep, offset=offset)
        pinned = ep._windows.pop(offset, None)
        if pinned is not None and pinned.active:
            pinned.unpin()
        return 0

    def readfrom(self, ep: GuestEndpoint, loffset: int, nbytes: int, roffset: int,
                 flags: RmaFlag = RmaFlag.NONE):
        n, _ = yield from self._forward(
            VPhiOp.READFROM, ep,
            loffset=loffset, nbytes=nbytes, roffset=roffset, flags=flags,
        )
        return n

    def writeto(self, ep: GuestEndpoint, loffset: int, nbytes: int, roffset: int,
                flags: RmaFlag = RmaFlag.NONE):
        n, _ = yield from self._forward(
            VPhiOp.WRITETO, ep,
            loffset=loffset, nbytes=nbytes, roffset=roffset, flags=flags,
        )
        return n

    def vreadfrom(self, ep: GuestEndpoint, vaddr: int, nbytes: int, roffset: int,
                  flags: RmaFlag = RmaFlag.NONE):
        """Remote window -> guest user buffer, bounced through kmalloc
        chunks (§III *Implementation details*: the receive/read case)."""
        self._ensure_connected(ep)
        if nbytes <= 0:
            raise EINVAL("RMA length must be positive")
        # copy_to_user per bounce chunk: the payload streams from the
        # kmalloc chunks straight into the user buffer, so no flat
        # kernel-side staging array is ever allocated.
        space = self.process.address_space
        n, _ = yield from self._forward(
            VPhiOp.VREADFROM, ep,
            in_nbytes=nbytes,
            segment_args=lambda a, off: {**a, "roffset": roffset + off},
            in_sink=lambda off, view: space.write(vaddr + off, view),
            roffset=roffset, flags=flags,
        )
        return n

    def vwriteto(self, ep: GuestEndpoint, vaddr: int, nbytes: int, roffset: int,
                 flags: RmaFlag = RmaFlag.NONE):
        """Guest user buffer -> remote window (the send/write case)."""
        self._ensure_connected(ep)
        if nbytes <= 0:
            raise EINVAL("RMA length must be positive")
        payload = self.process.address_space.read(vaddr, nbytes)
        n, _ = yield from self._forward(
            VPhiOp.VWRITETO, ep,
            out_data=payload,
            segment_args=lambda a, off: {**a, "roffset": roffset + off},
            roffset=roffset, flags=flags,
        )
        return n

    # ------------------------------------------------------------------
    # mmap: the two-level mapping with the VM_PFNPHI tag
    # ------------------------------------------------------------------
    def mmap(self, ep: GuestEndpoint, roffset: int, nbytes: int,
             prot: Prot = Prot.SCIF_PROT_READ | Prot.SCIF_PROT_WRITE) -> VMA:
        self._ensure_connected(ep)
        if nbytes <= 0 or nbytes % PAGE_SIZE or roffset % PAGE_SIZE:
            raise EINVAL("scif_mmap requires page-aligned offset and length")
        info, _ = yield from self._forward(
            VPhiOp.MMAP, ep, roffset=roffset, nbytes=nbytes, prot=prot
        )
        assert isinstance(info, PfnPhiInfo)
        space = self.process.address_space
        flags = VMAFlag.DEVICE | VMAFlag.PFNPHI
        if prot & Prot.SCIF_PROT_READ:
            flags |= VMAFlag.READ
        if prot & Prot.SCIF_PROT_WRITE:
            flags |= VMAFlag.WRITE
        # Every fault on this VMA goes through the (modified) KVM module,
        # which spots the PFNPHI tag and resolves to Xeon Phi memory.
        vma = space.mmap(
            nbytes, flags=flags,
            fault_handler=lambda v, a: self.vm.mmu.handle_fault(space, v, a),
            name=f"vphi-mmap@{roffset:#x}",
        )
        vma.private = info
        # the session journal remembers this mapping so a card reset can
        # re-establish it: replay swaps vma.private for the fresh PFN info
        # and zaps the stale EPT entries (faults then resolve anew).
        self.frontend.session.attach_vma(ep.handle, roffset, vma, space)
        return vma

    def munmap(self, vma: VMA):
        yield self.sim.timeout(0)
        self.frontend.session.detach_vma(vma)
        self.process.address_space.munmap(vma)
        return 0

    # ------------------------------------------------------------------
    # fences, poll, node ids
    # ------------------------------------------------------------------
    def fence_mark(self, ep: GuestEndpoint):
        mark, _ = yield from self._forward(VPhiOp.FENCE_MARK, ep)
        return mark

    def fence_wait(self, ep: GuestEndpoint, mark: int):
        yield from self._forward(VPhiOp.FENCE_WAIT, ep, mark=mark)
        return 0

    def fence_signal(self, ep: GuestEndpoint, loffset, lval: int,
                     roffset, rval: int):
        yield from self._forward(
            VPhiOp.FENCE_SIGNAL, ep,
            loffset=loffset, lval=lval, roffset=roffset, rval=rval,
        )
        return 0

    def poll(self, fds: Sequence[tuple[GuestEndpoint, PollEvent]],
             timeout: Optional[float] = None):
        """Single-endpoint polls forward directly; multi-endpoint polls
        fall back to non-blocking rounds (the frontend forwards one
        endpoint per request)."""
        if len(fds) == 1:
            ep, mask = fds[0]
            revents, _ = yield from self._forward(
                VPhiOp.POLL, ep, mask=mask, timeout=timeout
            )
            return [PollEvent(revents)]
        deadline = None if timeout is None else self.sim.now + timeout
        while True:
            out = []
            for ep, mask in fds:
                revents, _ = yield from self._forward(
                    VPhiOp.POLL, ep, mask=mask, timeout=0
                )
                out.append(PollEvent(revents))
            if any(out):
                return out
            if deadline is not None and self.sim.now >= deadline:
                return out
            yield self.sim.timeout(self.frontend.costs.poll_interval * 100)

    def get_node_ids(self):
        ids, _ = yield from self._forward(VPhiOp.GET_NODE_IDS)
        return ids
