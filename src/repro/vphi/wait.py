"""Frontend wait schemes: interrupt-based, polling, hybrid.

§III: "we can either implement a polling-based method or an interrupt-
based one.  Since busy-waiting on a shared resource consumes CPU cycles,
we choose the interrupt-based approach, adding up some extra overhead
when the driver sets up the sleeping mechanism" — and §IV-B measures that
overhead at 93 % of the 375 µs gap.  The hybrid scheme (poll for small
transfers, sleep for large ones) is the paper's stated future work,
implemented here so the ablation benches can quantify it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..analysis.calibration import VPHI_COSTS, VPhiCosts

if TYPE_CHECKING:  # pragma: no cover
    from .frontend import VPhiFrontend

__all__ = ["InterruptWait", "PollingWait", "HybridWait", "make_wait_scheme"]


class InterruptWait:
    """Sleep on the driver wait queue; the virtual-interrupt ISR wakes all
    sleepers, each of which pays the reschedule + ring-scan cost.

    With a ``deadline`` (the fault-recovery watchdog), the sleep races a
    timer; expiry returns ``None`` instead of a response and the waiter
    is withdrawn from the queue.
    """

    name = "interrupt"

    def __init__(self, costs: VPhiCosts = VPHI_COSTS):
        self.costs = costs

    def wait_for(self, frontend: "VPhiFrontend", tag: int, data_bytes: int,
                 deadline: float | None = None):
        sim = frontend.sim
        while tag not in frontend.responses:
            if deadline is None:
                yield frontend.waitq.wait()
            else:
                if sim.now >= deadline:
                    return None
                ev = frontend.waitq.wait()
                which, _ = yield sim.any_of([ev, sim.timeout(deadline - sim.now)])
                if which == 1:
                    frontend.waitq.cancel(ev)
                    # the VM may have been frozen past the deadline while
                    # the response landed (blocking-mode handling defers
                    # our timer): deliver it rather than spuriously
                    # timing out.
                    if tag in frontend.responses:
                        continue
                    return None
            # woken by the ISR: being rescheduled and scanning the shared
            # ring is the dominant cost of the whole vPHI path (§IV-B).
            yield sim.timeout(self.costs.wakeup_scheme)
            frontend.tracer.accumulate("vphi.wait_scheme_time", self.costs.wakeup_scheme)
        return frontend.claim_response(tag)


class PollingWait:
    """Busy-wait on the shared ring: low latency, burns a vCPU."""

    name = "polling"

    def __init__(self, costs: VPhiCosts = VPHI_COSTS):
        self.costs = costs

    def wait_for(self, frontend: "VPhiFrontend", tag: int, data_bytes: int,
                 deadline: float | None = None):
        sim = frontend.sim
        while tag not in frontend.responses:
            if deadline is not None and sim.now >= deadline:
                return None
            yield sim.timeout(self.costs.poll_interval)
            frontend.tracer.accumulate("vphi.poll_cpu_time", self.costs.poll_interval)
            frontend.drain_used()
        return frontend.claim_response(tag)


class HybridWait:
    """Poll for small requests, sleep for large ones (paper future work)."""

    name = "hybrid"

    def __init__(self, threshold: int, costs: VPhiCosts = VPHI_COSTS):
        self.threshold = threshold
        self._poll = PollingWait(costs)
        self._intr = InterruptWait(costs)

    def wait_for(self, frontend: "VPhiFrontend", tag: int, data_bytes: int,
                 deadline: float | None = None):
        scheme = self._poll if data_bytes < self.threshold else self._intr
        result = yield from scheme.wait_for(frontend, tag, data_bytes, deadline)
        return result


def make_wait_scheme(mode: str, hybrid_threshold: int, costs: VPhiCosts = VPHI_COSTS):
    if mode == "interrupt":
        return InterruptWait(costs)
    if mode == "polling":
        return PollingWait(costs)
    if mode == "hybrid":
        return HybridWait(hybrid_threshold, costs)
    raise ValueError(f"unknown wait mode {mode!r}")
