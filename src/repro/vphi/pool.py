"""Worker-pool backend dispatch: servicing SCIF ops off the event loop.

§III concedes that every forwarded op except ``scif_accept`` is serviced
in QEMU's *blocking* event-loop mode — the whole VM pauses while the host
syscall runs — and flags asynchronous servicing as future work.  This
module is that future work: :class:`WorkerPool` generalizes the single
dedicated accept worker into a per-VM pool of persistent QEMU worker
threads (sim processes).  With a pool armed
(``VPhiConfig(backend_workers=N)``), the backend's drain loop hands every
pool-eligible request to a pool member instead of freezing the VM, so
the vCPU keeps running, kicks keep draining, and completions return
out of order correlated by tag.

Three properties the pool guarantees:

* **per-endpoint ordering** — requests are sharded over members by
  endpoint handle, so each member services one handle's requests FIFO.
  Two ops on the same endpoint can never be reordered by concurrency;
  ops without an endpoint (open/get_node_ids/sysfs) spread round-robin
  and carry no ordering promise.
* **a bounded in-flight window** — the backend stops popping the avail
  ring once ``max_inflight`` requests are popped-but-incomplete; excess
  chains stay on the ring until a completion retires (back-pressure all
  the way to the guest's descriptor allocator).
* **per-VM fairness** — before issuing the host syscall a member must
  hold a dispatch credit from the machine-wide :class:`CardArbiter`,
  which grants slots round-robin over the VMs sharing the card.  A VM
  with a deep queue cannot starve a VM with one outstanding request.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import TYPE_CHECKING, Optional

from ..analysis.calibration import VPHI_COSTS, VPhiCosts
from ..scif import ScifError
from ..scif.errors import ECONNRESET
from ..sim import Channel, ChannelClosed, Event, Interrupted, Simulator
from .ops import SPAN_CREDIT_WAIT, SPAN_RING, OpSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..virtio import VirtqueueElement
    from .backend import VPhiBackend

__all__ = ["CardArbiter", "WorkerPool"]


class CardArbiter:
    """Round-robin dispatch credits over the VMs sharing one card.

    ``slots`` bounds concurrent host-side SCIF dispatches machine-wide
    (one per host core by default — the driver serializes per-core
    ioctls).  Waiters queue per VM; each freed slot goes to the next VM
    in round-robin order that has a waiter, so credit-hungry tenants
    take turns instead of draining the pool FIFO.
    """

    def __init__(self, sim: Simulator, slots: int, name: str = "vphi-arbiter"):
        if slots < 1:
            raise ValueError("arbiter needs at least one dispatch slot")
        self.sim = sim
        self.name = name
        self.slots = slots
        self._free = slots
        #: round-robin order: VMs in first-acquire order.
        self._order: list[str] = []
        self._queues: dict[str, deque[Event]] = {}
        self._next = 0
        #: metrics
        self.grants = 0
        self.grants_by_vm: dict[str, int] = {}

    @property
    def free(self) -> int:
        return self._free

    def _register(self, vm: str) -> None:
        if vm not in self._queues:
            self._queues[vm] = deque()
            self._order.append(vm)

    def acquire(self, vm: str) -> Event:
        """An event firing once ``vm`` holds a dispatch credit."""
        self._register(vm)
        ev = self.sim.event(name=f"{self.name}:{vm}")
        if self._free > 0 and not any(self._queues[v] for v in self._order):
            self._free -= 1
            self._grant(vm, ev)
        else:
            self._queues[vm].append(ev)
        return ev

    def release(self, vm: str) -> None:
        """Return ``vm``'s credit; hand it to the next waiting VM."""
        self._free += 1
        n = len(self._order)
        for k in range(n):
            v = self._order[(self._next + k) % n]
            queue = self._queues[v]
            while queue:
                ev = queue.popleft()
                if ev.triggered:
                    continue
                self._free -= 1
                self._next = (self._order.index(v) + 1) % n
                self._grant(v, ev)
                return

    def cancel(self, vm: str, ev: Event) -> None:
        """Abandon one pending acquire (its waiter was interrupted).

        An ungranted request is pulled off ``vm``'s queue; a granted but
        never-consumed credit is returned — otherwise the interrupted
        waiter would strand a slot and shrink the arbiter forever.
        """
        queue = self._queues.get(vm)
        if queue is not None and ev in queue:
            queue.remove(ev)
            return
        if ev.triggered:
            self.release(vm)

    def _grant(self, vm: str, ev: Event) -> None:
        self.grants += 1
        self.grants_by_vm[vm] = self.grants_by_vm.get(vm, 0) + 1
        ev.succeed()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CardArbiter slots={self.slots} free={self._free} grants={self.grants}>"


class WorkerPool:
    """One VM's pool of persistent QEMU worker threads (sim processes)."""

    def __init__(
        self,
        backend: "VPhiBackend",
        size: int,
        arbiter: CardArbiter,
        costs: VPhiCosts = VPHI_COSTS,
    ):
        if size < 1:
            raise ValueError("worker pool needs at least one member")
        self.backend = backend
        self.sim = backend.sim
        self.size = size
        self.arbiter = arbiter
        self.costs = costs
        vm = backend.vm.name
        self._chans = [
            Channel(self.sim, name=f"{vm}-pool-q{i}") for i in range(size)
        ]
        self._members = [
            self.sim.spawn(self._member(i), name=f"{vm}-pool-w{i}")
            for i in range(size)
        ]
        #: round-robin spread for ops without an endpoint (unordered).
        self._rr = itertools.count()
        #: per-pool submission sequence (the ordering audit trail).
        self._seq = itertools.count(1)
        #: metrics
        self.inflight = 0
        self.peak_inflight = 0
        self.submitted = 0
        self.completed = 0
        self.deaths = 0
        self.respawns = 0
        self.aborted = 0
        #: the element each member is currently servicing (None = idle);
        #: the machine-wide abort path interrupts exactly these.
        self._current: list = [None] * size
        self.busy_time = 0.0
        self.credit_wait = 0.0
        #: ``(handle, submit_seq)`` per retired endpoint op, in completion
        #: order — per-handle sequences must be strictly increasing (the
        #: property tests assert exactly that).
        self.completion_log: list[tuple[int, int]] = []

    # ------------------------------------------------------------------
    def shard_for(self, spec: OpSpec, req) -> int:
        """The member servicing this request.

        Endpoint ops pin to ``handle % size`` — one member per handle
        means per-endpoint FIFO by construction.  Endpoint-less ops have
        no ordering promise and spread round-robin.
        """
        if spec.wants_endpoint:
            return req.handle % self.size
        return next(self._rr) % self.size

    def submit(self, elem: "VirtqueueElement", spec: OpSpec) -> None:
        """Queue one popped chain on its member's shard (never blocks)."""
        self.submit_batch([(elem, spec)])

    def submit_batch(self, items: list) -> None:
        """Queue a whole drained batch of ``(elem, spec)`` pairs at once.

        One bookkeeping update for the batch, then per-item sharding in
        pop order — per-endpoint FIFO is preserved because same-handle
        requests land on the same shard in the order they were popped.
        Never blocks: the backend's drain loop already bounded the batch
        by the in-flight window.
        """
        self.inflight += len(items)
        if self.inflight > self.peak_inflight:
            self.peak_inflight = self.inflight
        self.submitted += len(items)
        chans = self._chans
        seq = self._seq
        for elem, spec in items:
            chans[self.shard_for(spec, elem.header)].try_put(
                (elem, spec, next(seq))
            )

    def _member(self, idx: int):
        """One persistent worker: credit -> service -> retire, forever.

        A member can be :meth:`~repro.sim.Process.interrupt`-ed while
        servicing (card reset / backend restart aborting the machine's
        in-flight work); the request it held completes with the abort
        error and the member survives to take the next chain.
        """
        vm = self.backend.vm.name
        while True:
            try:
                elem, spec, seq = yield self._chans[idx].get()
            except ChannelClosed:
                return
            # completing the request overwrites elem.header with the
            # response record; remember the handle for the audit trail.
            handle = elem.header.handle
            tag = elem.header.tag
            self._current[idx] = elem
            # shard pickup ends the chain's ring/queue residency; the
            # gap to the next mark is the machine-wide credit wait.
            tracer = self.backend.tracer
            tracer.mark_tag(tag, SPAN_RING)
            try:
                t0 = self.sim.now
                credit = self.arbiter.acquire(vm)
                try:
                    yield credit
                except Interrupted:
                    self.arbiter.cancel(vm, credit)
                    raise
                self.credit_wait += self.sim.now - t0
                tracer.mark_tag(tag, SPAN_CREDIT_WAIT)
                t1 = self.sim.now
                try:
                    yield from self.backend._service(elem, worker=idx)
                finally:
                    self.busy_time += self.sim.now - t1
                    self.arbiter.release(vm)
            except Interrupted as stop:
                err = (
                    stop.cause
                    if isinstance(stop.cause, ScifError)
                    else ECONNRESET("pool member interrupted mid-request")
                )
                self.aborted += 1
                self.backend.complete_with_error(elem, err)
            finally:
                self._current[idx] = None
                self.inflight -= 1
                self.completed += 1
                if spec.wants_endpoint:
                    self.completion_log.append((handle, seq))
                # retiring may unblock chains parked behind max_inflight
                self.backend.request_retired()

    def abort_inflight(self, err_factory, skip: Optional[int] = None) -> None:
        """Abort every popped-but-incomplete request in the pool.

        Queued chains are drained and completed with ``err_factory()``
        directly; members busy servicing a request are interrupted so
        the aborted host syscall unwinds at its next yield point.  The
        worker whose fault injection triggered the abort passes its own
        index as ``skip`` — its request errors through the normal
        dispatch-fault path instead.
        """
        for chan in self._chans:
            while True:
                ok, item = chan.try_get()
                if not ok:
                    break
                elem, spec, seq = item
                handle = elem.header.handle
                self.aborted += 1
                self.backend.complete_with_error(elem, err_factory())
                self.inflight -= 1
                self.completed += 1
                if spec.wants_endpoint:
                    self.completion_log.append((handle, seq))
                self.backend.request_retired()
        for i, proc in enumerate(self._members):
            if i != skip and self._current[i] is not None:
                proc.interrupt(err_factory())

    # ------------------------------------------------------------------
    def note_death(self, idx: int) -> None:
        """A member died mid-request; QEMU respawns it from the pool."""
        self.deaths += 1
        self.respawns += 1

    def utilization(self, elapsed: float) -> float:
        """Busy fraction of the pool's total member-time."""
        if elapsed <= 0:
            return 0.0
        return min(self.busy_time / (self.size * elapsed), 1.0)

    def shutdown(self) -> None:
        for chan in self._chans:
            chan.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<WorkerPool {self.backend.vm.name} size={self.size} "
            f"inflight={self.inflight} done={self.completed}>"
        )
