"""Worker-pool backend dispatch: servicing SCIF ops off the event loop.

§III concedes that every forwarded op except ``scif_accept`` is serviced
in QEMU's *blocking* event-loop mode — the whole VM pauses while the host
syscall runs — and flags asynchronous servicing as future work.  This
module is that future work: :class:`WorkerPool` generalizes the single
dedicated accept worker into a per-VM pool of persistent QEMU worker
threads (sim processes).  With a pool armed
(``VPhiConfig(backend_workers=N)``), the backend's drain loop hands every
pool-eligible request to a pool member instead of freezing the VM, so
the vCPU keeps running, kicks keep draining, and completions return
out of order correlated by tag.

Three properties the pool guarantees:

* **per-endpoint ordering** — requests are sharded over members by
  endpoint handle, so each member services one handle's requests FIFO.
  Two ops on the same endpoint can never be reordered by concurrency;
  ops without an endpoint (open/get_node_ids/sysfs) spread round-robin
  and carry no ordering promise.
* **a bounded in-flight window** — the backend stops popping the avail
  ring once ``max_inflight`` requests are popped-but-incomplete; excess
  chains stay on the ring until a completion retires (back-pressure all
  the way to the guest's descriptor allocator).
* **per-VM fairness** — before issuing the host syscall a member must
  hold a dispatch credit from the machine-wide :class:`CardArbiter`,
  which grants slots round-robin over the VMs sharing the card.  A VM
  with a deep queue cannot starve a VM with one outstanding request.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import TYPE_CHECKING, Optional

from ..analysis.calibration import VPHI_COSTS, VPhiCosts
from ..scif import ScifError
from ..scif.errors import ECONNRESET
from ..sim import Channel, ChannelClosed, Event, Interrupted, SimError, Simulator
from .ops import SPAN_CREDIT_WAIT, SPAN_RING, OpSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..virtio import VirtqueueElement
    from .backend import VPhiBackend

__all__ = ["CardArbiter", "WorkerPool"]


class CardArbiter:
    """Dispatch credits over the VMs sharing one card, under a pluggable
    scheduling policy.

    ``slots`` bounds concurrent host-side SCIF dispatches machine-wide
    (one per host core by default — the driver serializes per-core
    ioctls).  Waiters queue per VM; each freed slot goes to whichever
    waiting VM the active policy selects:

    * ``"rr"`` (default) — round-robin over VMs in first-acquire order.
      Every grant advances the rotor, including uncontended ones, so
      the VM that happened to be running when contention began holds no
      hidden head start and an idle VM keeps its place in the rotation
      when it resumes (VMs are never dropped from the order).
    * ``"wfq"`` — weighted fair queuing by virtual finish tags: each
      grant to ``vm`` costs ``1/weight(vm)`` of virtual time, and the
      waiter with the smallest prospective finish tag wins, so over any
      contended interval grants converge to the weight ratios.  A zero
      weight marks a best-effort tenant, served only when no weighted
      tenant is waiting.  Ties rotate round-robin.
    * ``"priority"`` — strict classes: the waiter with the numerically
      lowest priority class wins (0 = most important), round-robin
      within a class.  A lower class waiter always yields; starvation
      of the losers is the documented semantics, not a bug.

    Every grant — immediate or queued — flows through the same policy
    selector, so credit accounting cannot diverge between the contended
    and uncontended paths.
    """

    POLICIES = ("rr", "wfq", "priority")

    def __init__(
        self,
        sim: Simulator,
        slots: int,
        name: str = "vphi-arbiter",
        policy: str = "rr",
    ):
        if slots < 1:
            raise ValueError("arbiter needs at least one dispatch slot")
        self.sim = sim
        self.name = name
        self.slots = slots
        self._free = slots
        self.set_policy(policy)
        #: selection order: VMs in first-acquire order, never removed —
        #: an idle tenant keeps its slot in the rotation.
        self._order: list[str] = []
        self._queues: dict[str, deque[Event]] = {}
        #: rr/wfq rotor: the VM granted last.  Anchoring the rotor to a
        #: *name* (scan resumes after it) rather than an index keeps the
        #: rotation fair even when a tenant registers after the grant —
        #: ``(i + 1) % n`` with n == 1 pins the rotor back onto the only
        #: registered VM, handing it a head start over every later
        #: arrival.
        self._last: Optional[str] = None
        #: per-priority-class rr rotor (``priority`` policy).
        self._class_next: dict[int, int] = {}
        #: per-tenant wfq weights / priority classes (``configure``).
        self._weights: dict[str, float] = {}
        self._prios: dict[str, int] = {}
        #: wfq virtual clock, per-tenant virtual finish tags, and the
        #: virtual time each tenant last became backlogged.  The start
        #: tag is pinned when the queue goes non-empty (classic WFQ
        #: stamps on arrival): ranking a waiter against the *advancing*
        #: clock instead would float every unserved tag upward in
        #: lockstep and starve the light flows.
        self._vtime = 0.0
        self._finish: dict[str, float] = {}
        self._backlog_start: dict[str, float] = {}
        #: queued-but-ungranted acquires (O(1) contention check).
        self._waiting = 0
        #: metrics
        self.grants = 0
        self.grants_by_vm: dict[str, int] = {}
        self.waits = 0

    @property
    def free(self) -> int:
        return self._free

    @property
    def waiting(self) -> int:
        """Acquires currently queued (machine-wide contention depth)."""
        return self._waiting

    def set_policy(self, policy: str) -> None:
        """Switch scheduling policy (affects future grants only)."""
        if policy not in self.POLICIES:
            raise ValueError(
                f"unknown arbiter policy {policy!r} (choose from {self.POLICIES})"
            )
        self.policy = policy

    def configure(self, vm: str, weight: Optional[float] = None,
                  priority: Optional[int] = None) -> None:
        """Set one tenant's wfq weight and/or strict priority class.

        Safe mid-flight: weights and classes are read at selection time,
        so a change applies from the next grant onward — already-queued
        waiters are re-ranked, already-granted credits are not recalled.
        """
        self._register(vm)
        if weight is not None:
            if weight < 0:
                raise ValueError(f"qos weight must be >= 0, got {weight}")
            self._weights[vm] = weight
        if priority is not None:
            self._prios[vm] = priority

    def weight_of(self, vm: str) -> float:
        return self._weights.get(vm, 1.0)

    def priority_of(self, vm: str) -> int:
        return self._prios.get(vm, 0)

    def queue_depth(self, vm: str) -> int:
        """Ungranted acquires queued for one tenant."""
        queue = self._queues.get(vm)
        return len(queue) if queue else 0

    def _register(self, vm: str) -> None:
        if vm not in self._queues:
            self._queues[vm] = deque()
            self._order.append(vm)

    def deregister(self, vm: str) -> bool:
        """Drop one tenant's scheduling state (it left this card).

        Live migration moves a VM from one card's arbiter to another; the
        *source* arbiter must forget everything about it — its place in
        the selection order, its wfq virtual finish tag and backlog
        stamp, and its weight/priority — or the rotor keeps a ghost slot
        and, worse, the VM would carry a stale wfq start tag back if it
        ever migrated home.  The destination arbiter meets the VM as a
        brand-new tenant (``configure`` registers it fresh).

        Only an *idle* tenant can be deregistered: the migration path
        quiesces in-flight work first, so pending acquires here mean the
        caller skipped the drain — a bug worth failing loudly on.
        Returns False when the VM was never registered (idempotent).
        """
        queue = self._queues.get(vm)
        if queue is None:
            return False
        if queue:
            raise SimError(
                f"{self.name}: deregister({vm!r}) with {len(queue)} "
                "pending acquires — drain the tenant before migrating it"
            )
        idx = self._order.index(vm)
        if self._last == vm:
            # re-anchor the rotor to the predecessor so the scan resumes
            # exactly where it would have (the successor is next).
            self._last = self._order[idx - 1] if len(self._order) > 1 else None
        self._order.pop(idx)
        # per-class cursors index into _order; close the gap they span.
        self._class_next = {
            p: (c - 1 if c > idx else c)
            for p, c in self._class_next.items()
        }
        del self._queues[vm]
        self._weights.pop(vm, None)
        self._prios.pop(vm, None)
        self._finish.pop(vm, None)
        self._backlog_start.pop(vm, None)
        return True

    def acquire(self, vm: str) -> Event:
        """An event firing once ``vm`` holds a dispatch credit."""
        self._register(vm)
        if not self._queues[vm]:
            # queue goes non-empty: pin the wfq start tag now.  An idle
            # tenant re-enters at the current clock — it accrues no
            # credit for the time it wasn't asking.
            self._backlog_start[vm] = max(
                self._vtime, self._finish.get(vm, 0.0)
            )
        ev = self.sim.event(name=f"{self.name}:{vm}")
        self._queues[vm].append(ev)
        self._waiting += 1
        self._pump()
        if not ev.triggered:
            self.waits += 1
        return ev

    def release(self, vm: str) -> None:
        """Return ``vm``'s credit; hand it to the policy's next pick."""
        if self._free >= self.slots:
            raise SimError(
                f"{self.name}: credit released by {vm!r} with all "
                f"{self.slots} slots already free (double release)"
            )
        self._free += 1
        self._pump()

    def cancel(self, vm: str, ev: Event) -> None:
        """Abandon one pending acquire (its waiter was interrupted).

        An ungranted request is pulled off ``vm``'s queue; a granted but
        never-consumed credit is returned — otherwise the interrupted
        waiter would strand a slot and shrink the arbiter forever.
        """
        queue = self._queues.get(vm)
        if queue is not None and ev in queue:
            queue.remove(ev)
            self._waiting -= 1
            return
        if ev.triggered:
            self.release(vm)

    # -- policy core ---------------------------------------------------
    def _pump(self) -> None:
        """Grant free slots to waiters until one side runs dry."""
        while self._free > 0 and self._waiting > 0:
            vm = self._select()
            if vm is None:  # pragma: no cover - counter drift guard
                break
            queue = self._queues[vm]
            while queue:
                ev = queue.popleft()
                self._waiting -= 1
                if ev.triggered:
                    continue
                self._free -= 1
                self._grant(vm, ev)
                break

    def _select(self) -> Optional[str]:
        """The waiting VM the active policy serves next (with its
        rotor/virtual-clock accounting applied)."""
        if self.policy == "wfq":
            return self._select_wfq()
        if self.policy == "priority":
            return self._select_priority()
        return self._select_rr()

    def _rotor_start(self) -> int:
        """Index to resume scanning from: just past the last grantee."""
        if self._last is None:
            return 0
        return self._order.index(self._last) + 1

    def _select_rr(self) -> Optional[str]:
        n = len(self._order)
        start = self._rotor_start()
        for k in range(n):
            v = self._order[(start + k) % n]
            if self._queues[v]:
                self._last = v
                return v
        return None

    def _select_wfq(self) -> Optional[str]:
        n = len(self._order)
        best = None
        best_tag = 0.0
        effort = None
        # walk from the rotor so equal tags (and best-effort tenants)
        # rotate instead of always favouring the first-registered VM
        start = self._rotor_start()
        for k in range(n):
            v = self._order[(start + k) % n]
            if not self._queues[v]:
                continue
            w = self._weights.get(v, 1.0)
            if w <= 0.0:
                if effort is None:
                    effort = v
                continue
            tag = max(
                self._backlog_start.get(v, 0.0),
                self._finish.get(v, 0.0),
            ) + 1.0 / w
            if best is None or tag < best_tag:
                best, best_tag = v, tag
        if best is not None:
            start = best_tag - 1.0 / self._weights.get(best, 1.0)
            if start > self._vtime:
                self._vtime = start
            self._finish[best] = best_tag
            self._last = best
            return best
        if effort is not None:
            self._last = effort
            return effort
        return None

    def _select_priority(self) -> Optional[str]:
        best_prio: Optional[int] = None
        members: list[tuple[int, str]] = []
        for i, v in enumerate(self._order):
            if not self._queues[v]:
                continue
            p = self._prios.get(v, 0)
            if best_prio is None or p < best_prio:
                best_prio, members = p, [(i, v)]
            elif p == best_prio:
                members.append((i, v))
        if best_prio is None:
            return None
        cursor = self._class_next.get(best_prio, 0)
        for i, v in members:
            if i >= cursor:
                self._class_next[best_prio] = i + 1
                return v
        i, v = members[0]
        self._class_next[best_prio] = i + 1
        return v

    def _grant(self, vm: str, ev: Event) -> None:
        self.grants += 1
        self.grants_by_vm[vm] = self.grants_by_vm.get(vm, 0) + 1
        ev.succeed()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<CardArbiter {self.policy} slots={self.slots} "
            f"free={self._free} grants={self.grants}>"
        )


class WorkerPool:
    """One VM's pool of persistent QEMU worker threads (sim processes)."""

    def __init__(
        self,
        backend: "VPhiBackend",
        size: int,
        arbiter: CardArbiter,
        costs: VPhiCosts = VPHI_COSTS,
    ):
        if size < 1:
            raise ValueError("worker pool needs at least one member")
        self.backend = backend
        self.sim = backend.sim
        self.size = size
        self.arbiter = arbiter
        self.costs = costs
        vm = backend.vm.name
        self._chans = [
            Channel(self.sim, name=f"{vm}-pool-q{i}") for i in range(size)
        ]
        self._members = [
            self.sim.spawn(self._member(i), name=f"{vm}-pool-w{i}")
            for i in range(size)
        ]
        #: round-robin spread for ops without an endpoint (unordered).
        self._rr = itertools.count()
        #: per-pool submission sequence (the ordering audit trail).
        self._seq = itertools.count(1)
        #: metrics
        self.inflight = 0
        self.peak_inflight = 0
        self.submitted = 0
        self.completed = 0
        self.deaths = 0
        self.respawns = 0
        self.aborted = 0
        #: the element each member is currently servicing (None = idle);
        #: the machine-wide abort path interrupts exactly these.
        self._current: list = [None] * size
        self.busy_time = 0.0
        self.credit_wait = 0.0
        #: ``(handle, submit_seq)`` per retired endpoint op, in completion
        #: order — per-handle sequences must be strictly increasing (the
        #: property tests assert exactly that).
        self.completion_log: list[tuple[int, int]] = []

    # ------------------------------------------------------------------
    def shard_for(self, spec: OpSpec, req) -> int:
        """The member servicing this request.

        Endpoint ops pin to ``handle % size`` — one member per handle
        means per-endpoint FIFO by construction.  Endpoint-less ops have
        no ordering promise and spread round-robin.
        """
        if spec.wants_endpoint:
            return req.handle % self.size
        return next(self._rr) % self.size

    def submit(self, elem: "VirtqueueElement", spec: OpSpec) -> None:
        """Queue one popped chain on its member's shard (never blocks)."""
        self.submit_batch([(elem, spec)])

    def submit_batch(self, items: list) -> None:
        """Queue a whole drained batch of ``(elem, spec)`` pairs at once.

        One bookkeeping update for the batch, then per-item sharding in
        pop order — per-endpoint FIFO is preserved because same-handle
        requests land on the same shard in the order they were popped.
        Never blocks: the backend's drain loop already bounded the batch
        by the in-flight window.
        """
        self.inflight += len(items)
        if self.inflight > self.peak_inflight:
            self.peak_inflight = self.inflight
        self.submitted += len(items)
        chans = self._chans
        seq = self._seq
        for elem, spec in items:
            chans[self.shard_for(spec, elem.header)].try_put(
                (elem, spec, next(seq))
            )

    def _member(self, idx: int):
        """One persistent worker: credit -> service -> retire, forever.

        A member can be :meth:`~repro.sim.Process.interrupt`-ed while
        servicing (card reset / backend restart aborting the machine's
        in-flight work); the request it held completes with the abort
        error and the member survives to take the next chain.
        """
        vm = self.backend.vm.name
        while True:
            try:
                elem, spec, seq = yield self._chans[idx].get()
            except ChannelClosed:
                return
            # completing the request overwrites elem.header with the
            # response record; remember the handle for the audit trail.
            handle = elem.header.handle
            tag = elem.header.tag
            self._current[idx] = elem
            # shard pickup ends the chain's ring/queue residency; the
            # gap to the next mark is the machine-wide credit wait.
            tracer = self.backend.tracer
            tracer.mark_tag(tag, SPAN_RING)
            try:
                t0 = self.sim.now
                credit = self.arbiter.acquire(vm)
                try:
                    yield credit
                except Interrupted:
                    self.arbiter.cancel(vm, credit)
                    raise
                self.credit_wait += self.sim.now - t0
                tracer.mark_tag(tag, SPAN_CREDIT_WAIT)
                t1 = self.sim.now
                try:
                    yield from self.backend._service(elem, worker=idx)
                finally:
                    self.busy_time += self.sim.now - t1
                    self.arbiter.release(vm)
            except Interrupted as stop:
                err = (
                    stop.cause
                    if isinstance(stop.cause, ScifError)
                    else ECONNRESET("pool member interrupted mid-request")
                )
                self.aborted += 1
                self.backend.complete_with_error(elem, err)
            finally:
                self._current[idx] = None
                self.inflight -= 1
                self.completed += 1
                if spec.wants_endpoint:
                    self.completion_log.append((handle, seq))
                # retiring may unblock chains parked behind max_inflight
                self.backend.request_retired()

    def abort_inflight(self, err_factory, skip: Optional[int] = None) -> None:
        """Abort every popped-but-incomplete request in the pool.

        Queued chains are drained and completed with ``err_factory()``
        directly; members busy servicing a request are interrupted so
        the aborted host syscall unwinds at its next yield point.  The
        worker whose fault injection triggered the abort passes its own
        index as ``skip`` — its request errors through the normal
        dispatch-fault path instead.
        """
        for chan in self._chans:
            while True:
                ok, item = chan.try_get()
                if not ok:
                    break
                elem, spec, seq = item
                handle = elem.header.handle
                self.aborted += 1
                self.backend.complete_with_error(elem, err_factory())
                self.inflight -= 1
                self.completed += 1
                if spec.wants_endpoint:
                    self.completion_log.append((handle, seq))
                self.backend.request_retired()
        for i, proc in enumerate(self._members):
            if i != skip and self._current[i] is not None:
                proc.interrupt(err_factory())

    # ------------------------------------------------------------------
    def note_death(self, idx: int) -> None:
        """A member died mid-request; QEMU respawns it from the pool."""
        self.deaths += 1
        self.respawns += 1

    def utilization(self, elapsed: float) -> float:
        """Busy fraction of the pool's total member-time."""
        if elapsed <= 0:
            return 0.0
        return min(self.busy_time / (self.size * elapsed), 1.0)

    def shutdown(self) -> None:
        for chan in self._chans:
            chan.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<WorkerPool {self.backend.vm.name} size={self.size} "
            f"inflight={self.inflight} done={self.completed}>"
        )
