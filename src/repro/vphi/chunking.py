"""KMALLOC_MAX_SIZE chunking (§III, *Implementation details*).

"Linux memory subsystem imposes a limitation on the maximum set of
physically contiguous pages ... for x86_64 ... the limit is 4MB.  Hence,
if the requested data size is greater than this value, we implement the
data transfer breaking up the allocation to KMALLOC_MAX_SIZE elements and
proceed with each one of them."
"""

from __future__ import annotations

from ..mem import KMALLOC_MAX_SIZE, KernelAllocator, PhysExtent

__all__ = ["chunk_plan", "BounceBuffers"]


def chunk_plan(nbytes: int, chunk_size: int = KMALLOC_MAX_SIZE) -> list[int]:
    """Split ``nbytes`` into chunk sizes, each <= ``chunk_size``."""
    if nbytes < 0:
        raise ValueError("negative size")
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    out = []
    left = nbytes
    while left > 0:
        take = min(chunk_size, left)
        out.append(take)
        left -= take
    return out


class BounceBuffers:
    """A set of kmalloc'd guest-contiguous chunks covering one transfer."""

    __slots__ = ("allocator", "extents", "sizes", "nbytes")

    def __init__(self, allocator: KernelAllocator, nbytes: int, chunk_size: int,
                 label: str = "vphi-bounce"):
        self.allocator = allocator
        self.nbytes = nbytes
        self.sizes = chunk_plan(nbytes, chunk_size)
        self.extents: list[PhysExtent] = []
        try:
            for size in self.sizes:
                self.extents.append(allocator.kmalloc(size, label=label))
        except Exception:
            self.free()
            raise

    def descriptors(self) -> list[tuple[int, int]]:
        """(guest_physical_addr, len) pairs for the virtio chain."""
        return [(ext.addr, size) for ext, size in zip(self.extents, self.sizes)]

    def scatter(self, data) -> None:
        """Copy a flat payload into the chunks (guest user->kernel copy)."""
        off = 0
        for ext, size in zip(self.extents, self.sizes):
            ext.write(data[off : off + size])
            off += size

    def gather(self, nbytes: int | None = None):
        """Concatenate chunk contents back into a flat array."""
        import numpy as np

        n = self.nbytes if nbytes is None else min(nbytes, self.nbytes)
        out = np.empty(n, dtype=np.uint8)
        off = 0
        for ext, size in zip(self.extents, self.sizes):
            take = min(size, n - off)
            if take <= 0:
                break
            ext.read_into(out[off : off + take])
            off += take
        return out

    def scatter_to(self, consume, nbytes: int | None = None) -> int:
        """Stream chunk contents to ``consume(offset, view)`` without the
        flat intermediate array :meth:`gather` allocates.

        The views alias live chunk storage; ``consume`` must copy them out
        before returning.  Returns bytes streamed.
        """
        n = self.nbytes if nbytes is None else min(nbytes, self.nbytes)
        off = 0
        for ext, size in zip(self.extents, self.sizes):
            take = min(size, n - off)
            if take <= 0:
                break
            for voff, view in ext.iter_views(0, take):
                consume(off + voff, view)
            off += take
        return off

    def free(self) -> None:
        for ext in self.extents:
            if not ext.freed:
                self.allocator.kfree(ext)
        self.extents.clear()

    def __len__(self) -> int:
        return len(self.extents)
