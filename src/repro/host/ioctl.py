"""SCIF ioctl command numbers and request records.

``libscif`` talks to ``/dev/mic/scif`` almost exclusively through
``ioctl()`` (§II-B: "Most of the SCIF functionality is exposed to user
space through different ioctl() commands").  These mirror the request
layout of the real driver's ``scif_ioctl.h`` in spirit: one command per
API entry point, with a dataclass standing in for the C request struct.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["ScifIoctl", "IoctlRequest"]


class ScifIoctl(enum.IntEnum):
    """ioctl command numbers (values arbitrary but stable, like _IOW codes)."""

    BIND = 0x7001
    LISTEN = 0x7002
    CONNECT = 0x7003
    ACCEPTREQ = 0x7004
    SEND = 0x7006
    RECV = 0x7007
    REG = 0x7008
    UNREG = 0x7009
    READFROM = 0x700A
    WRITETO = 0x700B
    VREADFROM = 0x700C
    VWRITETO = 0x700D
    FENCE_MARK = 0x7010
    FENCE_WAIT = 0x7011
    GET_NODE_IDS = 0x7012


@dataclass
class IoctlRequest:
    """The argument block handed to the driver (the C struct analogue)."""

    cmd: ScifIoctl
    #: connection fields
    port: int = 0
    addr: Optional[tuple[int, int]] = None
    backlog: int = 16
    block: bool = True
    #: data-plane fields
    payload: Any = None
    nbytes: int = 0
    flags: int = 0
    #: RMA fields
    vaddr: int = 0
    loffset: int = 0
    roffset: int = 0
    offset: Optional[int] = None
    prot: int = 0
    mark: int = 0
    #: free-form extras (kept for forward compat with vPHI's wire format)
    extra: dict = field(default_factory=dict)
