"""The host Linux kernel: mic driver sysfs tree + SCIF char device.

Also carries the paper's *one* host-side modification: the KVM fault hook
for ``VM_PFNPHI``-tagged VMAs lives in :mod:`repro.kvm.fault`, and the
"<15 LOC in [the] host SCIF driver" half is the PFN stashing that
:class:`~repro.vphi.backend.VPhiBackend` performs when it services a
guest ``scif_mmap``.
"""

from __future__ import annotations

from typing import Optional

from ..mem import PhysicalMemory
from ..oscore import Kernel, Sysfs
from ..phi import XeonPhiDevice
from ..scif import ScifFabric, ScifNode
from ..sim import Simulator
from .scif_chardev import ScifCharDevice

__all__ = ["HostKernel"]


class HostKernel(Kernel):
    """Host-side kernel: owns system RAM, the mic sysfs tree and SCIF."""

    def __init__(self, sim: Simulator, phys: PhysicalMemory):
        super().__init__(sim, phys, name="host-linux")
        self.sysfs = Sysfs()
        self.scif_node: Optional[ScifNode] = None
        self.scif_dev: Optional[ScifCharDevice] = None

    def attach_scif(self, fabric: ScifFabric) -> ScifNode:
        """Load the host SCIF driver: node 0 + /dev/mic/scif."""
        self.scif_node = fabric.attach_host(self)
        self.scif_dev = ScifCharDevice(fabric, self.scif_node)
        return self.scif_node

    def publish_mic_sysfs(self, device: XeonPhiDevice) -> None:
        """Export the card's attributes under /sys/class/mic/micN.

        Values are published as live callables so ``state`` tracks boots.
        """
        base = f"sys/class/mic/{device.name}"
        for attr in device.sysfs_attrs():
            self.sysfs.publish(
                f"{base}/{attr}",
                (lambda d=device, a=attr: d.sysfs_attrs()[a]),
            )
