"""``/dev/mic/scif``: the character device the host SCIF driver exposes.

A process ``open()``\\ s the device to get an endpoint-backed fd, then
drives it with ``ioctl()`` commands; ``mmap()`` and ``poll()`` on the fd
map to ``scif_mmap``/``scif_poll``.  vPHI's QEMU backend is a regular
user of this device — that is the whole trick: "multiple VMs issuing SCIF
requests are essentially multiple host processes that execute system
calls to [the] SCIF driver in parallel" (§III).
"""

from __future__ import annotations

from typing import Optional

from ..faults import NO_FAULTS, FaultInjector, FaultSite
from ..oscore import OSProcess
from ..scif import (
    EBADF,
    EINVAL,
    Endpoint,
    MapFlag,
    NativeScif,
    PollEvent,
    Prot,
    RecvFlag,
    RmaFlag,
    ScifFabric,
    ScifNode,
    SendFlag,
)
from .ioctl import IoctlRequest, ScifIoctl

__all__ = ["ScifFile", "ScifCharDevice"]


class ScifFile:
    """One open fd on /dev/mic/scif: wraps an endpoint + the caller's libscif."""

    def __init__(self, device: "ScifCharDevice", process: OSProcess):
        self.device = device
        self.process = process
        self.lib = NativeScif(device.fabric, device.node, process)
        self.endpoint: Optional[Endpoint] = None
        self.closed = False

    # -- file ops ------------------------------------------------------
    def open_endpoint(self):
        """Performed at open(): allocate the backing endpoint."""
        self.endpoint = yield from self.lib.open()
        return self

    def _ep(self) -> Endpoint:
        if self.closed or self.endpoint is None:
            raise EBADF("operation on closed scif fd")
        return self.endpoint

    def ioctl(self, req: IoctlRequest):
        """Process: dispatch one ioctl command.  Returns the op's result."""
        ep = self._ep()
        cmd = req.cmd
        # the native (non-virtualized) injection site: a host process
        # driving /dev/mic/scif directly sees the same syscall errors a
        # vPHI backend would (fault plans can target either path).
        inj = self.device.faults.draw(FaultSite.HOST_IOCTL,
                                      op=cmd.name.lower(),
                                      vm=self.process.name)
        if inj is not None:
            raise inj.make_error()
        if cmd == ScifIoctl.BIND:
            return (yield from self.lib.bind(ep, req.port))
        if cmd == ScifIoctl.LISTEN:
            return (yield from self.lib.listen(ep, req.backlog))
        if cmd == ScifIoctl.CONNECT:
            if req.addr is None:
                raise EINVAL("CONNECT needs addr")
            return (yield from self.lib.connect(ep, req.addr))
        if cmd == ScifIoctl.ACCEPTREQ:
            new_ep, peer = yield from self.lib.accept(ep, block=req.block)
            # the driver returns a fresh fd whose endpoint is the accepted one
            newfile = ScifFile(self.device, self.process)
            newfile.endpoint = new_ep
            fd = self.process.install_fd(newfile)
            return fd, peer
        if cmd == ScifIoctl.SEND:
            return (yield from self.lib.send(ep, req.payload, SendFlag(req.flags or 1)))
        if cmd == ScifIoctl.RECV:
            return (yield from self.lib.recv(ep, req.nbytes, RecvFlag(req.flags or 1)))
        if cmd == ScifIoctl.REG:
            return (
                yield from self.lib.register(
                    ep, req.vaddr, req.nbytes, offset=req.offset,
                    prot=Prot(req.prot or 3), flags=MapFlag(req.flags),
                )
            )
        if cmd == ScifIoctl.UNREG:
            return (yield from self.lib.unregister(ep, req.offset))
        if cmd == ScifIoctl.READFROM:
            return (
                yield from self.lib.readfrom(
                    ep, req.loffset, req.nbytes, req.roffset, RmaFlag(req.flags)
                )
            )
        if cmd == ScifIoctl.WRITETO:
            return (
                yield from self.lib.writeto(
                    ep, req.loffset, req.nbytes, req.roffset, RmaFlag(req.flags)
                )
            )
        if cmd == ScifIoctl.VREADFROM:
            return (
                yield from self.lib.vreadfrom(
                    ep, req.vaddr, req.nbytes, req.roffset, RmaFlag(req.flags)
                )
            )
        if cmd == ScifIoctl.VWRITETO:
            return (
                yield from self.lib.vwriteto(
                    ep, req.vaddr, req.nbytes, req.roffset, RmaFlag(req.flags)
                )
            )
        if cmd == ScifIoctl.FENCE_MARK:
            return (yield from self.lib.fence_mark(ep))
        if cmd == ScifIoctl.FENCE_WAIT:
            return (yield from self.lib.fence_wait(ep, req.mark))
        if cmd == ScifIoctl.GET_NODE_IDS:
            return (yield from self.lib.get_node_ids())
        raise EINVAL(f"unknown scif ioctl {cmd!r}")

    def mmap(self, roffset: int, nbytes: int, prot: Prot = Prot.SCIF_PROT_READ | Prot.SCIF_PROT_WRITE):
        """Process: fd mmap -> scif_mmap on the backing endpoint."""
        return (yield from self.lib.mmap(self._ep(), roffset, nbytes, prot))

    def poll(self, mask: PollEvent, timeout: Optional[float] = None):
        """Process: fd poll -> scif_poll on the backing endpoint."""
        revents = yield from self.lib.poll([(self._ep(), mask)], timeout=timeout)
        return revents[0]

    def close(self):
        """Process: release the endpoint."""
        if not self.closed and self.endpoint is not None:
            yield from self.lib.close(self.endpoint)
        self.closed = True
        return 0


class ScifCharDevice:
    """The device node itself; ``open()`` hands out :class:`ScifFile` fds."""

    path = "/dev/mic/scif"

    def __init__(self, fabric: ScifFabric, node: ScifNode,
                 faults: Optional[FaultInjector] = None):
        self.fabric = fabric
        self.node = node
        #: fault source; the Machine rewires this after building its
        #: injector (default: inject nothing).
        self.faults = faults or NO_FAULTS
        self.opens = 0

    def open(self, process: OSProcess):
        """Process: open the device for ``process``; returns (fd, ScifFile)."""
        f = ScifFile(self, process)
        yield from f.open_endpoint()
        fd = process.install_fd(f)
        self.opens += 1
        return fd, f
