"""Host kernel substrate: mic sysfs, /dev/mic/scif char device."""

from .ioctl import IoctlRequest, ScifIoctl
from .kernel import HostKernel
from .scif_chardev import ScifCharDevice, ScifFile

__all__ = ["HostKernel", "IoctlRequest", "ScifCharDevice", "ScifFile", "ScifIoctl"]
