"""The card's micro operating system (uOS).

A trimmed Linux that boots from the host over PCIe: it owns the card's
GDDR, schedules user kernels over the cores, runs the card-side SCIF
driver and, once MPSS services start, the ``coi_daemon`` that receives
offload/launch requests (§II-B).
"""

from __future__ import annotations

from typing import Optional

from ..oscore import Kernel, OSProcess
from ..sim import Simulator
from .scheduler import MICScheduler

__all__ = ["UOS"]


class UOS(Kernel):
    """uOS kernel instance for one booted card."""

    def __init__(self, sim: Simulator, device) -> None:
        super().__init__(sim, device.gddr, name=f"uos-{device.name}")
        self.device = device
        self.scheduler = MICScheduler(sim, device.sku)
        #: card-side SCIF node driver, attached by the fabric.
        self.scif_node = None
        #: pid of the coi_daemon once MPSS services start.
        self.coi_daemon: Optional[OSProcess] = None

    def spawn_kernel(self, flops: float, threads: int, efficiency: float = 1.0,
                     name: str = "kernel"):
        """Submit a compute kernel to the scheduler; returns completion event."""
        return self.scheduler.submit(flops, threads, efficiency, name=name)

    def run_compute(self, flops: float, threads: int, efficiency: float = 1.0,
                    name: str = "kernel"):
        """Process helper: ``yield from uos.run_compute(...)`` blocks the
        calling card process until the kernel retires."""
        job = yield self.spawn_kernel(flops, threads, efficiency, name=name)
        return job

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<UOS {self.name} jobs={self.scheduler.active_jobs}>"
