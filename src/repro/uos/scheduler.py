"""The uOS compute scheduler: thread placement + processor sharing.

§III: "Simultaneous multi-threaded execution requests from different VMs
can end up running in parallel on the Xeon Phi device spreaded across the
available cores of the card.  If there is an oversubscription considering
requested threads to physical cores ratio, then the resource multiplexing
is accomplished by the scheduler of the uOS which runs on a dedicated
Xeon Phi core."

This module models exactly that:

* **placement** — a kernel with T threads lands round-robin over the 56
  usable cores; Knights Corner cores are in-order and can only issue on a
  thread every other cycle, so per-core throughput depends on how many
  threads are resident (the occupancy curve — 1 thread/core cannot exceed
  ~55 % of peak, which is why the paper sweeps 56/112/224 threads);
* **multiplexing** — concurrent kernels (e.g. dgemms launched from
  different VMs) share the card via processor sharing: rates are
  recomputed whenever the active set changes, with a context-switch
  penalty once demand oversubscribes the hardware threads.
"""

from __future__ import annotations

from typing import Optional

from ..phi.specs import PhiSKU
from ..sim import Event, SimError, Simulator

__all__ = ["OCCUPANCY", "MICScheduler", "ComputeJob", "placement_throughput"]

#: Fraction of a core's peak issue rate achieved with k resident hardware
#: threads (k=0..4).  KNC's in-order pipeline needs >=2 threads to issue
#: every cycle; 4 threads add a little more latency hiding.
OCCUPANCY = (0.0, 0.55, 0.90, 0.97, 1.00)

#: Throughput factor applied when total demand exceeds hardware threads
#: (uOS timeslicing: context switches + cache thrash).
MULTIPLEX_PENALTY = 0.92


def placement_throughput(threads: int, sku: PhiSKU) -> float:
    """Standalone flops/s of a T-thread kernel placed on the card.

    Threads spread round-robin over usable cores; per-core occupancy
    follows :data:`OCCUPANCY`.  Beyond 4 threads/core the curve saturates
    (the multiplexing penalty is applied by the scheduler, which knows
    about *total* demand, not here).
    """
    if threads <= 0:
        return 0.0
    cores = sku.usable_cores
    per_core_peak = sku.peak_dp_flops / sku.cores
    k, r = divmod(threads, cores)
    if k >= len(OCCUPANCY) - 1:
        # every core saturated at 4 threads
        return cores * OCCUPANCY[-1] * per_core_peak
    hi = OCCUPANCY[min(k + 1, len(OCCUPANCY) - 1)]
    lo = OCCUPANCY[k]
    return (r * hi + (cores - r) * lo) * per_core_peak


class ComputeJob:
    """One parallel kernel executing on the card."""

    __slots__ = ("name", "threads", "flops_total", "flops_done", "efficiency",
                 "rate", "done", "started_at", "finished_at")

    def __init__(self, name: str, threads: int, flops: float, efficiency: float,
                 done: Event, now: float):
        self.name = name
        self.threads = threads
        self.flops_total = flops
        self.flops_done = 0.0
        self.efficiency = efficiency
        self.rate = 0.0  # current flops/s, set by the scheduler
        self.done = done
        self.started_at = now
        self.finished_at: Optional[float] = None

    @property
    def remaining(self) -> float:
        return max(self.flops_total - self.flops_done, 0.0)


class MICScheduler:
    """Processor-sharing scheduler over the card's hardware threads."""

    def __init__(self, sim: Simulator, sku: PhiSKU):
        self.sim = sim
        self.sku = sku
        #: hardware thread slots available to user kernels.
        self.slots = sku.usable_cores * sku.threads_per_core
        self._active: list[ComputeJob] = []
        self._last_update = 0.0
        self._epoch = 0  # invalidates stale completion callbacks
        self.completed: list[ComputeJob] = []
        #: peak concurrent demand observed (sharing metric).
        self.peak_demand = 0
        #: integral of delivered flops (utilization accounting).
        self.flops_delivered = 0.0
        #: simulated seconds with at least one active job.
        self.busy_time = 0.0
        #: frequency multiplier applied to the card's aggregate
        #: throughput (the power model's throttle loop drives it; 1.0
        #: means full clock and is byte-identical to the pre-power era).
        self.clock_scale = 1.0
        #: the attached :class:`~repro.phi.power.PhiPowerModel`, if the
        #: owning device opted into power modeling.
        self.power = None

    # ------------------------------------------------------------------
    def submit(self, flops: float, threads: int, efficiency: float = 1.0,
               name: str = "kernel") -> Event:
        """Start a kernel; returns an event firing at its completion with
        the :class:`ComputeJob` as value."""
        if threads <= 0:
            raise SimError("kernel needs at least one thread")
        if flops < 0:
            raise SimError("negative flops")
        if not 0.0 < efficiency <= 1.0:
            raise SimError(f"efficiency must be in (0, 1], got {efficiency}")
        done = self.sim.event(name=f"job:{name}")
        job = ComputeJob(name, threads, flops, efficiency, done, self.sim.now)
        if self.power is not None:
            self.power.advance()  # integrate the pre-change segment
        self._advance()
        self._active.append(job)
        self.peak_demand = max(self.peak_demand, self.total_demand)
        self._reschedule()
        if self.power is not None:
            self.power.on_scheduler_change()
        return done

    @property
    def total_demand(self) -> int:
        return sum(j.threads for j in self._active)

    @property
    def active_jobs(self) -> int:
        return len(self._active)

    def job_rate(self, job: ComputeJob) -> float:
        return job.rate

    # ------------------------------------------------------------------
    def _advance(self) -> None:
        """Credit progress to every active job since the last update."""
        dt = self.sim.now - self._last_update
        if dt > 0:
            if self._active:
                self.busy_time += dt
            for job in self._active:
                job.flops_done += job.rate * dt
                self.flops_delivered += job.rate * dt
        self._last_update = self.sim.now

    def _recompute_rates(self) -> None:
        """Processor sharing with *global* thread placement.

        All active threads spread round-robin over the cores together, so
        the card's aggregate throughput is the occupancy of the combined
        thread count — never more than the hardware can issue — and each
        job receives its thread-proportional share.  Oversubscription
        beyond the hardware threads costs the context-switch penalty.
        """
        total = self.total_demand
        if total == 0:
            return
        total_tp = placement_throughput(total, self.sku)
        if total > self.slots:
            total_tp *= MULTIPLEX_PENALTY
        if self.clock_scale != 1.0:
            total_tp *= self.clock_scale
        for job in self._active:
            job.rate = total_tp * (job.threads / total) * job.efficiency

    def _reschedule(self) -> None:
        """Recompute rates and arm a callback at the earliest completion."""
        self._recompute_rates()
        self._epoch += 1
        epoch = self._epoch
        soonest: Optional[float] = None
        for job in self._active:
            if job.rate <= 0:
                continue
            eta = self.sim.now + job.remaining / job.rate
            if soonest is None or eta < soonest:
                soonest = eta
        if soonest is not None:
            self.sim.call_at(soonest, lambda: self._on_completion_check(epoch))

    def set_clock_scale(self, scale: float) -> None:
        """Rescale the card's aggregate throughput (throttle feedback).

        Progress accrued so far is credited at the old rate before the
        new scale takes effect, so a mid-job frequency change is exact.
        """
        if scale == self.clock_scale:
            return
        self._advance()
        self.clock_scale = scale
        if self._active:
            self._reschedule()

    def _on_completion_check(self, epoch: int) -> None:
        if epoch != self._epoch:
            return  # superseded by a newer schedule
        if self.power is not None:
            self.power.advance()  # integrate the pre-change segment
        self._advance()
        finished = [j for j in self._active if j.remaining <= 1e-6 * max(j.flops_total, 1.0)]
        for job in finished:
            self._active.remove(job)
            job.finished_at = self.sim.now
            job.rate = 0.0
            self.completed.append(job)
            job.done.succeed(job)
        if self._active:
            self._reschedule()
        if finished and self.power is not None:
            self.power.on_scheduler_change()

    def utilization(self, elapsed: float) -> float:
        """Fraction of the card's usable peak delivered over ``elapsed``
        seconds — the datacenter-utilization quantity §I motivates."""
        if elapsed <= 0:
            return 0.0
        usable_peak = self.sku.usable_cores * (self.sku.peak_dp_flops / self.sku.cores)
        return self.flops_delivered / (usable_peak * elapsed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<MICScheduler slots={self.slots} active={len(self._active)}>"
