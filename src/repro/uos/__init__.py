"""Card-side micro OS: kernel, compute scheduler."""

from .kernel import UOS
from .scheduler import OCCUPANCY, ComputeJob, MICScheduler, placement_throughput

__all__ = ["ComputeJob", "MICScheduler", "OCCUPANCY", "UOS", "placement_throughput"]
