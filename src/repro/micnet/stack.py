"""The emulated mic0 network: TCP-ish sockets tunnelled over SCIF.

§II-B: "Xeon Phi software stack includes an emulated network driver as
part of the uOS, that uses SCIF, and enables users to utilize network
tools (e.g. ssh) and remotely connect to the Xeon Phi device."

Model: each card exposes a ``mic0`` interface; the host gets the MPSS
default addressing (host ``172.31.<i>.254``, card ``172.31.<i>.1``).
A TCP connection is tunnelled as its own SCIF connection with the
netstack's extra costs charged per MTU-sized frame — which is why this
path is an order of magnitude slower than raw SCIF (and why the ssh
launch path loses to micnativeloadex in ablation A5).

Guests have **no** mic0 unless the operator builds the §IV-A bridge:
:class:`NetBridge` grafts a VM onto the host-side network — bypassing
vPHI entirely and, as the paper warns, ruining tenant isolation (see
:mod:`repro.micnet.sshd`'s session table).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..scif import ECONNREFUSED, EINVAL, NativeScif, ScifError
from ..sim import us

__all__ = ["MicNetwork", "NetSocket", "NetBridge", "TCP_PORT_BASE"]

#: TCP ports are NAT'ed onto SCIF ports above this base.
TCP_PORT_BASE = 10_000

#: mic0 jumbo MTU (MPSS default).
MTU = 64 * 1024

#: per-frame netstack cost (skb handling, emulated-NIC interrupt, TCP).
FRAME_COST = us(150)

#: connection establishment extra (TCP handshake over the tunnel).
HANDSHAKE_COST = us(400)


class MicNetwork:
    """IP addressing + routing for one machine's mic interfaces."""

    def __init__(self, machine):
        self.machine = machine
        self._ip_to_node: dict[str, int] = {}
        self._node_to_ip: dict[int, str] = {}
        # host gets one address per card subnet; cards get .1
        self.register("172.31.0.254", 0)
        for i, dev in enumerate(machine.devices):
            if dev.node_id is None:
                raise ScifError(f"{dev.name} not attached; boot the machine first")
            self.register(f"172.31.{i}.1", dev.node_id)

    def register(self, ip: str, node_id: int) -> None:
        self._ip_to_node[ip] = node_id
        self._node_to_ip.setdefault(node_id, ip)

    def resolve(self, ip: str) -> int:
        try:
            return self._ip_to_node[ip]
        except KeyError:
            raise ECONNREFUSED(f"no route to host {ip}") from None

    def address_of(self, node_id: int) -> Optional[str]:
        return self._node_to_ip.get(node_id)

    def card_ip(self, card: int = 0) -> str:
        return f"172.31.{card}.1"

    def host_ip(self) -> str:
        return "172.31.0.254"


class NetSocket:
    """A stream socket riding the mic0 tunnel.

    Mirrors the SCIF endpoint API shape (connect/listen/accept/send/
    recv) but charges the netstack costs and segments payloads at the
    MTU — real bytes still cross the fabric underneath.
    """

    def __init__(self, network: MicNetwork, lib: NativeScif, extra_latency: float = 0.0):
        self.network = network
        self.lib = lib
        self.sim = lib.sim
        self.ep = None
        #: extra one-way latency (a VM bridge hop, for bridged sockets).
        self.extra_latency = extra_latency
        self.bytes_sent = 0
        self.bytes_received = 0

    # ------------------------------------------------------------------
    def _ensure_ep(self):
        if self.ep is None:
            self.ep = yield from self.lib.open()
        return self.ep

    def bind_listen(self, port: int, backlog: int = 16):
        """Server side: bind a TCP port and listen."""
        if not 0 < port < 65536:
            raise EINVAL(f"bad TCP port {port}")
        yield from self._ensure_ep()
        yield from self.lib.bind(self.ep, TCP_PORT_BASE + port)
        yield from self.lib.listen(self.ep, backlog)
        return self

    def accept(self):
        """Server side: accept one connection; returns a connected socket."""
        conn_ep, peer = yield from self.lib.accept(self.ep)
        sock = NetSocket(self.network, self.lib, extra_latency=self.extra_latency)
        sock.ep = conn_ep
        peer_ip = self.network.address_of(peer[0])
        return sock, (peer_ip, peer[1])

    def connect(self, ip: str, port: int):
        """Client side: TCP connect (handshake charged)."""
        node = self.network.resolve(ip)
        yield from self._ensure_ep()
        yield self.sim.timeout(HANDSHAKE_COST + self.extra_latency)
        yield from self.lib.connect(self.ep, (node, TCP_PORT_BASE + port))
        return self

    def send(self, data):
        """Stream send, segmented at the MTU, netstack cost per frame."""
        if isinstance(data, (bytes, bytearray)):
            data = np.frombuffer(bytes(data), dtype=np.uint8)
        off = 0
        while off < len(data):
            frame = data[off : off + MTU]
            yield self.sim.timeout(FRAME_COST + self.extra_latency)
            yield from self.lib.send(self.ep, frame)
            off += len(frame)
        self.bytes_sent += len(data)
        return len(data)

    def recv(self, nbytes: int):
        """Stream recv of exactly ``nbytes`` (per-frame cost charged as
        the receive-side netstack work)."""
        out = np.empty(nbytes, dtype=np.uint8)
        off = 0
        while off < nbytes:
            take = min(MTU, nbytes - off)
            chunk = yield from self.lib.recv(self.ep, take)
            yield self.sim.timeout(FRAME_COST + self.extra_latency)
            out[off : off + len(chunk)] = chunk
            off += len(chunk)
        self.bytes_received += nbytes
        return out

    def close(self):
        if self.ep is not None:
            yield from self.lib.close(self.ep)
            self.ep = None


class NetBridge:
    """The §IV-A host bridge: graft a VM onto the mic0 network.

    "this can become possible by configuring a network bridge on the
    host between the emulated mic0 network interface and the interface
    that is attached to the VM.  However, this configuration is not
    well-suited for cloud environments."

    A bridged guest socket runs over the *host's* SCIF context (it
    bypasses vPHI) with the bridge hop added to every frame.
    """

    BRIDGE_HOP = us(25)

    def __init__(self, machine, vm, network: MicNetwork):
        self.machine = machine
        self.vm = vm
        self.network = network
        # the bridge endpoint lives in the VM's QEMU process on the host
        self._lib = NativeScif(
            machine.fabric, machine.kernel.scif_node, vm.qemu_process,
            host_params=machine.host_params,
        )
        # the VM becomes reachable: give it an address on the host subnet
        self.vm_ip = f"172.31.0.{100 + sum(1 for _ in vm.name)}"
        network.register(self.vm_ip, 0)

    def socket(self) -> NetSocket:
        """A guest-usable socket (runs on the host side of the bridge)."""
        return NetSocket(self.network, self._lib, extra_latency=self.BRIDGE_HOP)
