"""sshd on the card: remote shell sessions over the mic0 network.

The §IV-A "first case" of native mode: "the user can ... ssh to the
accelerator and execute the application locally.  In [that] case the
user should explicitly copy the executables, libraries and other
dependencies on the coprocessor and then execute the application."

Protocol (length-framed pickles, like COI): ``scp`` (followed by raw
bytes) copies a file into the card's filesystem; ``exec`` runs a copied
binary; ``who`` lists every session the daemon has seen — which is how
the isolation problem the paper warns about becomes visible: every
bridged VM's user shows up in the same table.
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import dataclass, field
from typing import Optional

from ..coi.protocol import recv_msg, send_msg
from ..mpss.binaries import lookup_binary
from ..scif import ScifError
from .stack import MicNetwork, NetSocket

__all__ = ["SshDaemon", "SshSession", "ssh_connect"]

SSH_PORT = 22


@dataclass
class _SessionRecord:
    session_id: int
    user: str
    from_ip: str
    commands: list = field(default_factory=list)
    active: bool = True


class SshDaemon:
    """The card's sshd + a minimal filesystem for scp'ed files."""

    def __init__(self, machine, card: int = 0, network: Optional[MicNetwork] = None):
        self.machine = machine
        self.sim = machine.sim
        self.card = card
        self.network = network or MicNetwork(machine)
        self.uos = machine.uos(card)
        self.os_process = machine.card_process(f"sshd-mic{card}", card=card)
        self.lib = machine.scif(self.os_process)
        #: the card-local filesystem: path -> (size, crc32)
        self.filesystem: dict[str, tuple[int, int]] = {}
        self.sessions: list[_SessionRecord] = []
        self._session_ids = itertools.count(1)

    def start(self):
        self.sim.spawn(self._run(), name=f"sshd-mic{self.card}")
        return self

    # ------------------------------------------------------------------
    def _run(self):
        listener = NetSocket(self.network, self.lib)
        yield from listener.bind_listen(SSH_PORT, backlog=32)
        while True:
            try:
                sock, peer = yield from listener.accept()
            except ScifError:
                return
            self.sim.spawn(self._serve(sock, peer), name="sshd-session")

    def _serve(self, sock: NetSocket, peer):
        record = _SessionRecord(next(self._session_ids), user="?", from_ip=peer[0])
        self.sessions.append(record)
        lib, ep = sock.lib, sock.ep
        try:
            hello = yield from recv_msg(lib, ep)
            record.user = hello.get("user", "?")
            yield from send_msg(lib, ep, {"ok": True, "banner": f"mic{self.card} uOS"})
            while True:
                msg = yield from recv_msg(lib, ep)
                record.commands.append(msg["type"])
                handler = getattr(self, f"_cmd_{msg['type']}", None)
                if handler is None:
                    yield from send_msg(lib, ep, {"ok": False,
                                                  "error": f"bad command {msg['type']}"})
                    continue
                reply = yield from handler(msg, sock)
                yield from send_msg(lib, ep, reply)
        except ScifError:
            pass
        finally:
            record.active = False

    # ------------------------------------------------------------------
    def _cmd_scp(self, msg, sock: NetSocket):
        """Receive one file's bytes into the card filesystem."""
        data = yield from sock.recv(msg["size"])
        self.filesystem[msg["path"]] = (msg["size"], zlib.crc32(data.tobytes()))
        return {"ok": True, "path": msg["path"]}

    def _cmd_exec(self, msg, sock: NetSocket):
        """Run a previously copied binary locally on the card."""
        name = msg["binary"]
        path = f"/tmp/{name}"
        if path not in self.filesystem:
            return {"ok": False, "error": f"{path}: No such file or directory"}
        binary = lookup_binary(name)
        if binary is None:
            return {"ok": False, "error": f"{name}: not executable"}
        size, crc = self.filesystem[path]
        if crc != binary.checksum():
            return {"ok": False, "error": f"{path}: corrupted upload"}
        missing = [
            f"/tmp/{dep.name}" for dep in binary.deps
            if f"/tmp/{dep.name}" not in self.filesystem
        ]
        if missing:
            return {"ok": False,
                    "error": f"error while loading shared libraries: {missing[0]}"}
        proc = self.uos.create_process(f"ssh-exec-{name}")
        exit_record = yield from binary.entry(
            self.uos, proc, msg.get("argv", []), msg.get("env", {})
        )
        proc.exit()
        return {"ok": True, "exit": exit_record}

    def _cmd_who(self, msg, sock: NetSocket):
        """List sessions — every tenant on the shared card sees this."""
        yield self.sim.timeout(0)
        return {
            "ok": True,
            "sessions": [
                {"id": r.session_id, "user": r.user, "from": r.from_ip,
                 "active": r.active, "commands": list(r.commands)}
                for r in self.sessions
            ],
        }

    def _cmd_ls(self, msg, sock: NetSocket):
        yield self.sim.timeout(0)
        return {"ok": True, "files": sorted(self.filesystem)}


class SshSession:
    """Client-side ssh session handle."""

    def __init__(self, sock: NetSocket, banner: str):
        self.sock = sock
        self.banner = banner

    def scp(self, path: str, content):
        """Copy bytes to the card."""
        yield from send_msg(self.sock.lib, self.sock.ep,
                            {"type": "scp", "path": path, "size": len(content)})
        yield from self.sock.send(content)
        reply = yield from recv_msg(self.sock.lib, self.sock.ep)
        if not reply.get("ok"):
            raise ScifError(reply.get("error"))
        return reply

    def exec(self, binary: str, argv=(), env=None):
        yield from send_msg(self.sock.lib, self.sock.ep,
                            {"type": "exec", "binary": binary,
                             "argv": list(argv), "env": dict(env or {})})
        reply = yield from recv_msg(self.sock.lib, self.sock.ep)
        if not reply.get("ok"):
            raise ScifError(reply.get("error"))
        return reply["exit"]

    def who(self):
        yield from send_msg(self.sock.lib, self.sock.ep, {"type": "who"})
        reply = yield from recv_msg(self.sock.lib, self.sock.ep)
        return reply["sessions"]

    def ls(self):
        yield from send_msg(self.sock.lib, self.sock.ep, {"type": "ls"})
        reply = yield from recv_msg(self.sock.lib, self.sock.ep)
        return reply["files"]

    def close(self):
        yield from self.sock.close()


def ssh_connect(network: MicNetwork, sock: NetSocket, ip: str, user: str = "micuser"):
    """Process: open an ssh session to ``ip``; returns :class:`SshSession`."""
    yield from sock.connect(ip, SSH_PORT)
    yield from send_msg(sock.lib, sock.ep, {"type": "hello", "user": user})
    reply = yield from recv_msg(sock.lib, sock.ep)
    return SshSession(sock, reply.get("banner", ""))
