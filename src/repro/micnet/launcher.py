"""The ssh-based native-mode launcher (§IV-A's "first case").

scp the executable and every dependency to the card, then ssh-exec it —
what a user without micnativeloadex would do, and the path the paper
rejects for cloud setups ("such setups can end up with many users logged
in a shared accelerator environment ruining the isolation
characteristics of cloud computing").
"""

from __future__ import annotations

import numpy as np

from ..mpss.binaries import MICBinary
from ..mpss.micnativeloadex import LaunchResult
from .sshd import ssh_connect
from .stack import MicNetwork, NetSocket

__all__ = ["ssh_native_launch"]


def ssh_native_launch(
    machine,
    network: MicNetwork,
    sock: NetSocket,
    binary: MICBinary,
    argv=(),
    env=None,
    card: int = 0,
    user: str = "micuser",
):
    """Process: launch ``binary`` on the card over ssh; returns
    :class:`~repro.mpss.LaunchResult` (same record as micnativeloadex,
    so the two launch paths are directly comparable)."""
    sim = machine.sim
    t_start = sim.now
    session = yield from ssh_connect(network, sock, network.card_ip(card), user=user)
    # explicit copies: the executable and each shared library
    t_transfer0 = sim.now
    yield from session.scp(f"/tmp/{binary.name}", binary.content())
    for dep in binary.deps:
        yield from session.scp(f"/tmp/{dep.name}", np.zeros(dep.size, dtype=np.uint8))
    transfer_time = sim.now - t_transfer0
    exit_record = yield from session.exec(binary.name, argv=argv, env=env)
    yield from session.close()
    return LaunchResult(
        exit_record=exit_record,
        total_time=sim.now - t_start,
        transfer_time=transfer_time,
        compute_time=exit_record.get("compute_time", 0.0),
        transferred_bytes=binary.total_transfer_bytes,
    )
