"""The emulated mic0 network over SCIF: sockets, sshd, the ssh launch path."""

from .launcher import ssh_native_launch
from .sshd import SSH_PORT, SshDaemon, SshSession, ssh_connect
from .stack import MicNetwork, NetBridge, NetSocket, TCP_PORT_BASE

__all__ = [
    "MicNetwork",
    "NetBridge",
    "NetSocket",
    "SSH_PORT",
    "SshDaemon",
    "SshSession",
    "TCP_PORT_BASE",
    "ssh_connect",
    "ssh_native_launch",
]
